package passd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"passv2/internal/checkpoint"
	"passv2/internal/dpapi"
	"passv2/internal/graph"
	"passv2/internal/health"
	"passv2/internal/pnode"
	"passv2/internal/pql"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/replica"
	"passv2/internal/waldo"
)

// Config configures a Server. The zero value serves on a kernel-assigned
// loopback port with GOMAXPROCS workers, a queue of 4× that, a 5s default
// per-query deadline and a 30s cap.
type Config struct {
	// Addr is the TCP listen address; empty means "127.0.0.1:0".
	Addr string
	// Workers bounds how many queries execute concurrently; <=0 means
	// GOMAXPROCS (but at least 2, so a slow query cannot starve the pool
	// alone).
	Workers int
	// MaxQueue bounds how many queries may wait for a worker before the
	// server sheds load; <=0 means 4×Workers.
	MaxQueue int
	// DefaultTimeout is the per-query deadline when the request does not
	// carry one; <=0 means 5s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested deadlines; <=0 means 30s.
	MaxTimeout time.Duration
	// MaxVersion caps the protocol version hello negotiates; <=0 means
	// ProtocolVersion. Setting 2 serves the line-oriented JSON protocol
	// only — the knob the negotiation-matrix tests (and a staged rollout)
	// use to stand up a "v2-only" daemon.
	MaxVersion int
	// MaxInFlight bounds how many requests one protocol-v3 connection may
	// have executing or queued at once; beyond it the server replies
	// ErrOverloaded immediately instead of reading further ahead. This is
	// per-connection admission control in front of the worker pool's
	// global backpressure (queries still shed via MaxQueue). <=0 means
	// 1024.
	MaxInFlight int

	// TenantQuotas caps named tenants (Request.Tenant, usually set once on
	// hello): per-tenant in-flight requests and staged wire bytes per
	// second. A tenant without an entry — and the empty tenant — is
	// unlimited. Over-quota requests are refused at admission with the
	// "quota" wire code (ErrQuotaExceeded), before any execution, so the
	// refusal is always safe to retry. See DESIGN.md §12.
	TenantQuotas map[string]TenantQuota

	// AdminAddr, when non-empty, serves the HTTP admin surface —
	// /metrics (Prometheus text format), /healthz (liveness) and /readyz
	// (readiness) — on that address. AdminListener, when non-nil, serves
	// it on an existing listener instead (the tests' port-0 seam); the
	// server owns either and closes it on Close.
	AdminAddr     string
	AdminListener net.Listener

	// Checkpoints, when non-nil, enables durable checkpointing: a
	// background checkpointer writes a generation whenever either trigger
	// below fires, the "checkpoint" verb forces one, and Close takes a
	// final one so a clean shutdown restarts from the tip.
	Checkpoints *checkpoint.Store
	// CheckpointInterval is the elapsed-time trigger; <=0 means 30s.
	CheckpointInterval time.Duration
	// CheckpointEvery is the records-applied trigger: checkpoint once this
	// many records have been ingested since the last one. <=0 disables the
	// record trigger (interval only).
	CheckpointEvery int64
	// CheckpointFullEvery bounds delta chains: one full snapshot, then up
	// to CheckpointFullEvery-1 cheap delta generations, then full again.
	// <=1 writes a full snapshot every time (the historical behavior).
	CheckpointFullEvery int
	// Append, when non-nil, routes committed provenance records to the
	// daemon's backing log (the daemon wires it to its volume's
	// write-through provenance log). When nil, records are applied
	// straight to the in-memory database — consistent, but only as
	// durable as the process. Acknowledgments wait for Sync, so Append
	// itself need not flush.
	Append func([]record.Record) error
	// Sync, when non-nil, forces everything Append accepted onto stable
	// storage. It is the single durable-ack point: one call per
	// acknowledged request, however many DPAPI ops the request pipelined
	// — which is exactly why batched disclosure beats per-record
	// round-trips (one fsync amortized over the whole batch).
	Sync func() error
	// ObjectVolume is the pnode volume prefix for phantom objects created
	// over the wire (mkobj); zero means DefaultObjectVolume. It must
	// differ from every local volume and from the kernel's transient
	// space, or remote identities would collide with local ones.
	ObjectVolume uint16
	// Recovered carries the boot-time recovery outcome, surfaced in STATS
	// so clients (and the restart tests) can see what recovery did.
	Recovered *checkpoint.Recovered

	// Listener, when non-nil, serves on it instead of listening on Addr —
	// the seam the fault-injection tests use to put a netfault wrapper
	// between the daemon and its clients. The server owns it and closes
	// it on Close.
	Listener net.Listener

	// Replicate, when non-nil, makes this daemon a replication primary:
	// the durable-ack barrier additionally commits the log through the
	// replica.Primary (blocking for its write quorum), and the "repljoin"
	// verb registers announcing followers. The server does not own it;
	// the daemon closes it after the server.
	Replicate *replica.Primary

	// Follower, when non-nil, makes this daemon a read-only replication
	// follower: "replstate"/"replappend" serve the primary against this
	// log, and client writes are refused with ErrReadOnly. The server
	// does not own it.
	Follower *replica.FollowerLog

	// Tamper, when non-nil, wires the tamper-evidence stack (DESIGN.md
	// §13): the live Merkle mountain range over the daemon's provenance
	// log, the signing identity, and the rehydration path that upgrades a
	// pruned (peak-file-resumed) range to full proof capability. It
	// enables the "verify" verb and the MMR fields in STATS and /metrics.
	Tamper *TamperConfig

	// Feeder, when non-nil on a replication follower, verifies
	// proof-carrying replicated appends: a "replappend" whose mmr_n /
	// mmr_root claim disagrees with the root the feeder recomputes over
	// the same bytes is refused with the "forked" code before anything
	// touches the durable log, and the feeder is poisoned so nothing
	// after the fork is accepted either. The server does not own it.
	Feeder *provlog.TailFeeder
}

// ErrOverloaded is the backpressure error: all workers busy and the wait
// queue full. Clients see its message with an "overloaded:" prefix.
var ErrOverloaded = errors.New("passd: overloaded, retry later")

// ErrUnavailable is the replication backpressure error: the write is
// durable on the primary but the write quorum did not acknowledge it in
// time, so the request is refused rather than falsely acked. The refusal
// happens *after* the records were staged and durably logged, so
// resending a record-staging op would disclose its records twice; the
// client auto-retries this error only for idempotent ops and surfaces it
// to writers, whose records will still replicate once quorum heals.
var ErrUnavailable = errors.New("passd: write quorum unavailable, retry later")

// ErrReadOnly is a follower refusing a client write: followers replicate
// the primary's log verbatim, so the only writer is the primary.
var ErrReadOnly = errors.New("passd: read-only replication follower")

// ErrQuotaExceeded is a per-tenant quota refusal: the request's tenant is
// over its configured in-flight or staged-bytes/sec cap, and the request
// was refused at admission — nothing executed, so retrying with backoff
// (which the client does automatically, exactly as for ErrOverloaded) is
// always safe. Other tenants are unaffected; that is the point.
var ErrQuotaExceeded = errors.New("passd: tenant over quota, retry later")

// Server is the query daemon: an accept loop, per-connection goroutines,
// and a bounded worker pool all queries pass through. Create with Serve,
// stop with Close.
type Server struct {
	cfg Config
	w   *waldo.Waldo
	ln  net.Listener
	reg *registry // protocol-v2 phantom objects

	workers chan struct{} // worker-pool slots
	waiting atomic.Int64  // queries queued for a slot
	closed  atomic.Bool
	v3Conns atomic.Int64 // connections upgraded to binary framing

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	// snap is the current snapshot cache: a pinned view plus everything
	// soundly shareable across queries on it. Rebuilt (O(1)) whenever the
	// database generation moves.
	snapMu sync.Mutex
	snap   *snapshot

	queries     atomic.Int64
	queryErrors atomic.Int64
	timeouts    atomic.Int64
	drains      atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	appends     atomic.Int64
	mkobjs      atomic.Int64
	revives     atomic.Int64
	batches     atomic.Int64

	quorumFailures atomic.Int64 // primary: acks refused for lack of quorum

	// Tamper-evidence state: forkRefusals counts replicated appends this
	// follower refused as forked, verifies counts "verify" verbs served,
	// and rehydrateMu serializes the rescan that upgrades a pruned MMR to
	// proof capability (concurrent verifies must not rescan twice).
	forkRefusals atomic.Int64
	verifies     atomic.Int64
	rehydrateMu  sync.Mutex

	// Observability and admission (admin.go, quota.go): met owns every
	// /metrics family — including the per-lane shed counters Stats.Shed is
	// derived from, so the two surfaces read one set of counters — health
	// is the /healthz//readyz checker, tenants the per-tenant quota table,
	// admin the HTTP admin server (nil when not configured).
	met     *serverMetrics
	health  *health.Checker
	tenants *tenantTable
	admin   *http.Server
	adminLn net.Listener

	// Checkpointer state: ckptMu serializes checkpoint writes (the
	// background loop and the verb can race), stopCkpt ends the loop.
	ckptMu           sync.Mutex
	stopCkpt         chan struct{}
	lastCkptGen      atomic.Int64
	lastCkptRecords  atomic.Int64
	lastCkptUnixNano atomic.Int64 // when the last checkpoint committed (0 = never)
	checkpoints      atomic.Int64
	checkpointErrors atomic.Int64
	// Per-kind checkpoint accounting: payload bytes committed as full
	// snapshots vs deltas, how many generations were deltas, and how many
	// post-commit retention sweeps failed (committed generations whose
	// housekeeping lagged — deliberately not CheckpointErrors).
	checkpointFullBytes   atomic.Int64
	checkpointDeltaBytes  atomic.Int64
	checkpointDeltas      atomic.Int64
	checkpointSweepErrors atomic.Int64
}

// snapshot bundles one pinned view with the caches its immutability makes
// sound: a graph, a shared traversal memo, parsed plans, and finished
// results keyed by query text. None of it needs invalidation logic — the
// whole bundle is dropped when the database generation moves.
type snapshot struct {
	view *waldo.ReadView
	g    *graph.Graph
	memo *graph.SharedMemo

	mu      sync.Mutex
	plans   map[string]*pql.Plan
	results map[string]*queryResult
}

// queryResult is one cached query outcome on a snapshot.
type queryResult struct {
	cols    []string
	rows    [][]Value
	elapsed int64 // µs spent computing it (cache hits report the original)
}

// currentSnapshot returns the snapshot cache for the database's current
// generation, pinning a fresh view when ingestion has advanced it. The
// generation is read under snapMu so a racing ApplyBatch cannot make two
// queries replace each other's freshly built same-generation bundle.
func (s *Server) currentSnapshot() *snapshot {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	gen := s.w.DB.Gen()
	if s.snap == nil || s.snap.view.Gen() != gen {
		view := s.w.DB.ReadView()
		g := graph.New(view)
		s.snap = &snapshot{
			view:    view,
			g:       g,
			memo:    g.NewSharedMemo(),
			plans:   make(map[string]*pql.Plan),
			results: make(map[string]*queryResult),
		}
	}
	return s.snap
}

// maxCachedQueries bounds each snapshot's plan and result maps: a
// long-lived generation (a static database with no ingestion never moves
// it) must not grow server memory without bound under a many-distinct-
// query workload. Past the cap, queries still execute — they just stop
// populating the caches.
const maxCachedQueries = 1024

// plan returns the cached plan for src, parsing and planning on first use.
func (sn *snapshot) plan(src string) (*pql.Plan, error) {
	sn.mu.Lock()
	p, ok := sn.plans[src]
	sn.mu.Unlock()
	if ok {
		return p, nil
	}
	q, err := pql.Parse(src)
	if err != nil {
		return nil, err
	}
	p = pql.PlanQuery(q)
	sn.mu.Lock()
	if len(sn.plans) < maxCachedQueries {
		sn.plans[src] = p
	}
	sn.mu.Unlock()
	return p, nil
}

func (sn *snapshot) cachedResult(src string) (*queryResult, bool) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	r, ok := sn.results[src]
	return r, ok
}

func (sn *snapshot) storeResult(src string, r *queryResult) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if len(sn.results) < maxCachedQueries {
		sn.results[src] = r
	}
}

// Serve starts a daemon over w's database and returns once the listener is
// bound. The returned server is live: connect with Dial(srv.Addr()).
func Serve(w *waldo.Waldo, cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 2 {
		cfg.Workers = 2
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.Workers
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 30 * time.Second
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Addr)
		if err != nil {
			return nil, err
		}
	}
	if cfg.CheckpointInterval <= 0 {
		cfg.CheckpointInterval = 30 * time.Second
	}
	if cfg.MaxVersion <= 0 || cfg.MaxVersion > ProtocolVersion {
		cfg.MaxVersion = ProtocolVersion
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 1024
	}
	if cfg.ObjectVolume == 0 {
		cfg.ObjectVolume = DefaultObjectVolume
	}
	s := &Server{
		cfg:     cfg,
		w:       w,
		ln:      ln,
		reg:     newRegistry(w, cfg.ObjectVolume),
		workers: make(chan struct{}, cfg.Workers),
		conns:   make(map[net.Conn]struct{}),
	}
	s.met = newServerMetrics(s)
	s.health = health.New()
	s.tenants = newTenantTable(cfg.TenantQuotas)
	if p := cfg.Replicate; p != nil {
		// A primary that cannot reach its write quorum refuses every
		// durable ack, so it should stop receiving write traffic — a
		// readiness concern, never a liveness one (restarting it would not
		// bring the followers back).
		s.health.AddReadiness("quorum", func() error {
			connected := 1 // the primary itself
			for _, f := range p.Followers() {
				if f.Connected {
					connected++
				}
			}
			if q := p.Quorum(); connected < q {
				return fmt.Errorf("%d of %d quorum members reachable", connected, q)
			}
			return nil
		})
	}
	if cfg.Recovered != nil && cfg.Recovered.DB != nil {
		// The recovered generation is the implicit first checkpoint: the
		// record trigger counts ingestion since it, not since zero.
		s.lastCkptGen.Store(cfg.Recovered.Gen)
		s.lastCkptRecords.Store(cfg.Recovered.Records)
	}
	if err := s.startAdmin(); err != nil {
		ln.Close()
		return nil, err
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if cfg.Checkpoints != nil {
		s.stopCkpt = make(chan struct{})
		s.wg.Add(1)
		go s.checkpointLoop()
	}
	// Recovery is done, the listeners are bound: the daemon is ready for
	// traffic (readiness checks such as quorum still gate /readyz).
	s.health.SetReady(true)
	return s, nil
}

// checkpointLoop is the background checkpointer: it polls at a fraction of
// the interval so the records-applied trigger reacts promptly, and writes
// a generation when either trigger fires. Errors are counted and retried
// at the next tick — a failing disk must not take the serving layer down.
func (s *Server) checkpointLoop() {
	defer s.wg.Done()
	poll := s.cfg.CheckpointInterval / 10
	if poll < 50*time.Millisecond {
		poll = 50 * time.Millisecond
	}
	if poll > 5*time.Second {
		poll = 5 * time.Second
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-s.stopCkpt:
			return
		case <-ticker.C:
		}
		due := time.Since(last) >= s.cfg.CheckpointInterval
		if !due && s.cfg.CheckpointEvery > 0 {
			records, _, _ := s.w.DB.Stats()
			due = records-s.lastCkptRecords.Load() >= s.cfg.CheckpointEvery
		}
		if !due {
			continue
		}
		s.doCheckpoint()
		last = time.Now()
	}
}

// doCheckpoint writes one checkpoint generation if the database has moved
// since the last one. It is shared by the background loop, the
// "checkpoint" verb and the final flush in Close.
func (s *Server) doCheckpoint() (checkpoint.Info, error) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	// Cheap idle check first: pinning a cut bumps the store's write epoch
	// (forcing the ingest writer to re-clone nodes) and takes every tail
	// lock — not worth it just to discover nothing changed.
	if gen := s.w.DB.Gen(); gen == s.lastCkptGen.Load() {
		return checkpoint.Info{Gen: gen, Records: s.lastCkptRecords.Load()}, nil
	}
	st := s.w.CheckpointState()
	if st.Gen == s.lastCkptGen.Load() {
		return checkpoint.Info{Gen: st.Gen, Records: st.Records}, nil
	}
	info, err := s.cfg.Checkpoints.Write(st, checkpoint.Policy{FullEvery: s.cfg.CheckpointFullEvery})
	if err != nil {
		s.checkpointErrors.Add(1)
		return info, err
	}
	s.checkpoints.Add(1)
	if info.Kind == checkpoint.KindDelta {
		s.checkpointDeltas.Add(1)
		s.checkpointDeltaBytes.Add(info.SnapshotBytes)
	} else {
		s.checkpointFullBytes.Add(info.SnapshotBytes)
	}
	if info.SweepErr != nil {
		// The generation committed; only the retention sweep failed.
		s.checkpointSweepErrors.Add(1)
	}
	s.lastCkptGen.Store(info.Gen)
	s.lastCkptRecords.Store(info.Records)
	s.lastCkptUnixNano.Store(time.Now().UnixNano())
	if t := s.cfg.Tamper; t != nil && t.SaveState != nil {
		// The generation committed; only persisting the MMR peak snapshot
		// failed. That is housekeeping lag, not checkpoint failure — the
		// next boot falls back to rebuilding the range from the log.
		if serr := t.SaveState(); serr != nil {
			s.checkpointSweepErrors.Add(1)
		}
	}
	return info, nil
}

// Addr returns the bound listen address, for clients.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes every open connection, waits for all
// connection handlers to return and — when checkpointing is enabled —
// writes a final checkpoint, so a cleanly stopped daemon restarts from the
// tip with nothing to replay. It is idempotent.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.health.SetReady(false)
	if s.admin != nil {
		s.admin.Close() // also closes the admin listener
	}
	if s.stopCkpt != nil {
		close(s.stopCkpt)
	}
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	if s.cfg.Checkpoints != nil {
		if _, cerr := s.doCheckpoint(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// connState is the per-connection protocol-v2 residue: the wire handles
// this connection has opened. Handles are connection-scoped (a disconnect
// releases them all — the object and its provenance survive in the
// registry, revivable from any later connection) and touched only by the
// connection's own goroutine, so no lock is needed.
type connState struct {
	handles map[uint64]*serverObject
	next    uint64

	// tenant is the connection's tenant identity, set by a hello carrying
	// one. Written only by the connection's reader goroutine, and read
	// only there too (the reader resolves each request's effective tenant
	// before fanning it out), so no lock is needed.
	tenant string
}

// open registers an object and returns its wire handle. Handles start at 1
// so 0 can mean "no handle" (the handle-less write path) on the wire.
func (cs *connState) open(obj *serverObject) uint64 {
	if cs.handles == nil {
		cs.handles = make(map[uint64]*serverObject)
	}
	cs.next++
	cs.handles[cs.next] = obj
	return cs.next
}

// lookup resolves a wire handle: dpapi.ErrClosed for a handle this
// connection closed, a plain error for one it never opened.
func (cs *connState) lookup(h uint64) (*serverObject, error) {
	obj, ok := cs.handles[h]
	if !ok {
		return nil, fmt.Errorf("passd: unknown handle %d", h)
	}
	if obj == nil {
		return nil, dpapi.ErrClosed
	}
	return obj, nil
}

// maxLineBytes is the JSON protocol's per-line read budget (v1/v2). An
// over-budget line is refused with a codeTooLarge response before the
// connection closes — the framing is unrecoverable past the cap, but the
// client gets a machine-readable reason instead of a silent drop.
const maxLineBytes = 4 << 20

// errLineTooLong reports a request line over maxLineBytes.
var errLineTooLong = errors.New("passd: request line exceeds the wire size budget")

// connReaderPool recycles per-connection read buffers: connection churn
// (a swarm of short-lived clients) must not allocate a fresh 64 KiB
// buffer per accept.
var connReaderPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 64<<10) },
}

// respBuffer is a pooled response-marshal buffer plus its JSON encoder:
// the v2 JSON path encodes every reply into one of these and hands the
// bytes to the connection in a single write, instead of allocating an
// encode buffer per reply.
type respBuffer struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var respBufPool = sync.Pool{
	New: func() any {
		rb := &respBuffer{}
		rb.enc = json.NewEncoder(&rb.buf)
		return rb
	},
}

// writeJSONResponse marshals resp through a pooled buffer and writes it
// as one line. Buffers inflated by a giant result set are dropped rather
// than pooled.
func writeJSONResponse(w io.Writer, resp *Response) error {
	rb := respBufPool.Get().(*respBuffer)
	rb.buf.Reset()
	if err := rb.enc.Encode(resp); err != nil {
		respBufPool.Put(rb)
		return err
	}
	_, err := w.Write(rb.buf.Bytes())
	if rb.buf.Cap() <= 1<<20 {
		respBufPool.Put(rb)
	}
	return err
}

// readBoundedLine reads one newline-terminated line of at most
// maxLineBytes, mirroring bufio.Scanner's line semantics (final line
// without a newline is still a line, trailing \r is stripped) but with a
// typed over-budget error instead of a silent stop. The fast path — a
// line that fits the reader's buffer — returns a slice aliasing it,
// valid until the next read.
func readBoundedLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadSlice('\n')
	if err == nil {
		return trimLine(line), nil
	}
	if errors.Is(err, io.EOF) {
		if len(line) > 0 {
			return trimLine(line), nil
		}
		return nil, io.EOF
	}
	if !errors.Is(err, bufio.ErrBufferFull) {
		return nil, err
	}
	buf := append([]byte(nil), line...)
	for {
		if len(buf) > maxLineBytes {
			return nil, errLineTooLong
		}
		line, err = br.ReadSlice('\n')
		buf = append(buf, line...)
		switch {
		case err == nil:
			if len(buf) > maxLineBytes {
				return nil, errLineTooLong
			}
			return trimLine(buf), nil
		case errors.Is(err, io.EOF):
			if len(buf) > maxLineBytes {
				return nil, errLineTooLong
			}
			if len(buf) > 0 {
				return trimLine(buf), nil
			}
			return nil, io.EOF
		case errors.Is(err, bufio.ErrBufferFull):
			// keep accumulating
		default:
			return nil, err
		}
	}
}

// trimLine strips the trailing newline (and \r) from a raw line.
func trimLine(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line
}

// handle serves one connection. It starts in the line-oriented JSON
// protocol (v1/v2): requests processed sequentially, one JSON line in,
// one JSON line out. A hello that negotiates protocol version ≥3 hands
// the connection to serveFrames, which multiplexes many in-flight
// requests over binary frames; until then, concurrency comes from
// connections, not from pipelining within one.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	cs := &connState{}
	defer func() {
		// Disconnect releases this connection's handles; the objects and
		// their provenance stay in the registry/database, revivable.
		for _, obj := range cs.handles {
			if obj != nil {
				s.reg.release(obj)
			}
		}
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := connReaderPool.Get().(*bufio.Reader)
	br.Reset(conn)
	defer func() {
		br.Reset(nil) // drop the conn reference before pooling
		connReaderPool.Put(br)
	}()
	for {
		line, err := readBoundedLine(br)
		if err != nil {
			if errors.Is(err, errLineTooLong) {
				// The stream is desynchronized past the budget, so the
				// connection must close — but with a machine-readable
				// refusal first, not the silent drop Scanner's ErrTooLong
				// used to cause.
				writeJSONResponse(conn, &Response{
					Error: fmt.Sprintf("request line exceeds the %d-byte budget; split the request", maxLineBytes),
					Code:  codeTooLarge,
				})
				drainBeforeClose(conn, br)
			}
			return
		}
		if len(line) == 0 {
			continue
		}
		var req Request
		resp := Response{}
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Error = "bad request: " + err.Error()
		} else {
			resolveTenant(cs, &req)
			resp = s.serve(cs, &req, laneLine, len(line))
		}
		resp.OK = resp.Error == ""
		if err := writeJSONResponse(conn, &resp); err != nil {
			return
		}
		// A successful hello that negotiated v3 upgrades the transport:
		// everything after this reply is binary frames, both directions.
		if resp.OK && resp.Version >= 3 && strings.EqualFold(req.Op, "hello") {
			s.serveFrames(conn, br, cs)
			return
		}
	}
}

// serialVerb reports whether op must run on the connection's serial lane:
// DPAPI verbs share the per-connection handle table (connState) and keep
// v2's strict FIFO semantics, and record-staging verbs keep their
// arrival order. Everything else — queries, stats, replication state —
// touches only shared state with its own synchronization and may run
// concurrently; that split is what lets a fast query overtake a slow
// disclosure on the same connection.
func serialVerb(op string) bool {
	switch strings.ToLower(op) {
	case "query", "explain", "stats", "drain", "checkpoint", "ping", "hello", "replstate", "repljoin", "verify":
		return false
	}
	return true
}

// outFrame is one response queued for the connection's writer goroutine.
type outFrame struct {
	stream uint32
	resp   Response
}

// serveFrames serves one protocol-v3 connection: a reader loop (this
// goroutine) decodes request frames and fans them out, a single writer
// goroutine serializes response frames (chunking large ones), and two
// dispatch lanes run the work — a serial lane preserving v2's in-order
// semantics for stateful verbs, and per-request goroutines for
// concurrent-safe verbs, which still pass through the worker pool's
// global backpressure. A per-connection in-flight cap (Config.MaxInFlight)
// refuses further requests with ErrOverloaded instead of reading
// unboundedly ahead.
func (s *Server) serveFrames(conn net.Conn, br *bufio.Reader, cs *connState) {
	s.v3Conns.Add(1)
	defer s.v3Conns.Add(-1)

	out := make(chan outFrame, 64)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(conn, 64<<10)
		sc := getFrameScratch()
		defer putFrameScratch(sc)
		dead := false
		for m := range out {
			if dead {
				continue // drain so producers never block on a dead conn
			}
			if err := writeResponseFrames(bw, m.stream, &m.resp, sc); err != nil {
				dead = true
				conn.Close() // unblocks the reader loop too
				continue
			}
			// Flush when no more responses are immediately queued: one
			// syscall covers however many responses were ready.
			if len(out) == 0 {
				if err := bw.Flush(); err != nil {
					dead = true
					conn.Close()
				}
			}
		}
		if !dead {
			bw.Flush()
		}
	}()

	type frameJob struct {
		stream uint32
		wire   int
		req    *Request
	}
	var inflight atomic.Int64
	serialQ := make(chan frameJob, 64)
	serialDone := make(chan struct{})
	go func() {
		defer close(serialDone)
		for j := range serialQ {
			resp := s.serve(cs, j.req, laneSerial, j.wire)
			out <- outFrame{j.stream, resp}
			inflight.Add(-1)
		}
	}()

	var wg sync.WaitGroup
	refused := false
	for {
		h, err := readFrameHeader(br)
		if err != nil {
			if errors.Is(err, errFrameTooLarge) {
				out <- outFrame{h.stream, *refuseTooLarge(h.length)}
				refused = true
			}
			break
		}
		payload, err := readFramePayload(br, h)
		if err != nil {
			break
		}
		if h.kind != frameRequest || h.flags&flagMore != 0 {
			// Requests are single frames; anything else means the peer
			// and we disagree about the protocol — stop before
			// misinterpreting the stream.
			out <- outFrame{h.stream, Response{Error: "bad frame: requests are single request-kind frames"}}
			break
		}
		req, _, derr := decodeRequestPayload(payload, 0)
		if derr != nil {
			// The frame boundary held, so the stream is still in sync:
			// refuse this request and keep serving.
			out <- outFrame{h.stream, Response{Error: "bad request: " + derr.Error()}}
			continue
		}
		resolveTenant(cs, req)
		if inflight.Add(1) > int64(s.cfg.MaxInFlight) {
			inflight.Add(-1)
			s.met.shed.With(laneConn).Inc()
			resp := errResponse(fmt.Errorf("overloaded: connection has %d requests in flight: %w", s.cfg.MaxInFlight, ErrOverloaded))
			out <- outFrame{h.stream, resp}
			continue
		}
		if serialVerb(req.Op) {
			serialQ <- frameJob{h.stream, h.length, req}
			continue
		}
		wg.Add(1)
		go func(stream uint32, wire int, req *Request) {
			defer wg.Done()
			resp := s.serve(cs, req, laneConcurrent, wire)
			out <- outFrame{stream, resp}
			inflight.Add(-1)
		}(h.stream, h.length, req)
	}
	// Teardown: the writer keeps consuming until both lanes finish, so
	// no in-flight dispatch can block on a full out channel.
	wg.Wait()
	close(serialQ)
	<-serialDone
	close(out)
	<-writerDone
	if refused {
		drainBeforeClose(conn, br)
	}
}

// refuseTooLarge is the v3 twin of the JSON path's over-budget refusal.
func refuseTooLarge(n int) *Response {
	return &Response{
		Error: fmt.Sprintf("frame payload of %d bytes exceeds the %d-byte budget; split the request", n, maxFramePayload),
		Code:  codeTooLarge,
	}
}

// drainBeforeClose briefly consumes whatever the peer already sent after
// a refusal, so closing the socket with unread bytes in the receive
// buffer does not turn into a TCP reset that clobbers the refusal before
// the peer reads it. Bounded by a short deadline — a peer that keeps
// streaming just gets cut off.
func drainBeforeClose(conn net.Conn, br *bufio.Reader) {
	conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
	io.Copy(io.Discard, br)
}

// ConnCount reports currently open client connections.
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Dispatch lanes, as the per-lane in-flight gauge and shed counters label
// them: "line" is the v1/v2 one-request-at-a-time JSON loop, "serial" and
// "concurrent" are protocol v3's two execution lanes, "queue" is the
// worker pool's wait queue and "conn" the per-connection v3 in-flight cap
// (the last two only shed, they never execute).
const (
	laneLine       = "line"
	laneSerial     = "serial"
	laneConcurrent = "concurrent"
	laneQueue      = "queue"
	laneConn       = "conn"
)

// verbLabel maps a wire op onto the bounded verb label set the per-verb
// metric families use — unknown ops collapse into "unknown" so a peer
// spraying garbage cannot grow label cardinality without bound.
func verbLabel(op string) string {
	switch op := strings.ToLower(op); op {
	case "query", "explain", "stats", "drain", "checkpoint", "ping", "hello",
		"append", "mkobj", "revive", "read", "write", "freeze", "sync", "close",
		"batch", "repljoin", "replstate", "replappend", "verify":
		return op
	}
	return "unknown"
}

// resolveTenant pins req's effective tenant before fan-out: a hello
// carrying one renames the connection, and any other request inherits the
// connection's tenant unless it names its own. Must run on the
// connection's reader goroutine — connState.tenant is unsynchronized by
// design (see connState).
func resolveTenant(cs *connState, req *Request) {
	if req.Tenant != "" && strings.EqualFold(req.Op, "hello") {
		cs.tenant = req.Tenant
	}
	if req.Tenant == "" {
		req.Tenant = cs.tenant
	}
}

// serve runs one decoded request through the full instrumented serving
// path: tenant quota admission first (an over-quota request is refused
// with the "quota" code before anything executes or counts as served),
// then per-verb request/latency/error accounting and the per-lane
// in-flight gauge around dispatch. wireBytes is the request's encoded
// size on the wire — the unit the staged-bytes/sec tenant quota charges
// for record-staging verbs. Every execution lane funnels through here, so
// /metrics, STATS and the wire all describe the same requests.
func (s *Server) serve(cs *connState, req *Request, lane string, wireBytes int) Response {
	verb := verbLabel(req.Op)
	release, err := s.admitTenant(req.Tenant, verb, wireBytes)
	if err != nil {
		resp := errResponse(err)
		resp.OK = false
		return resp
	}
	defer release()
	s.met.requests.With(verb).Inc()
	s.met.inflight.With(lane).Add(1)
	start := time.Now()
	resp := s.dispatch(cs, req)
	s.met.latency.With(verb).Observe(time.Since(start).Seconds())
	s.met.inflight.With(lane).Add(-1)
	if resp.Error != "" {
		s.met.requestErrors.With(verb).Inc()
	}
	resp.OK = resp.Error == ""
	return resp
}

func (s *Server) dispatch(cs *connState, req *Request) Response {
	switch strings.ToLower(req.Op) {
	case "query":
		return s.doQuery(req)
	case "explain":
		return s.doExplain(req)
	case "stats":
		return Response{Stats: s.snapshotStats()}
	case "drain":
		return s.doDrain()
	case "checkpoint":
		return s.doCheckpointVerb()
	case "append":
		return s.doAppend(req)
	case "ping":
		return Response{}
	case "hello":
		return s.doHello(req)
	case "mkobj", "revive", "read", "write", "freeze", "sync", "close":
		resp := s.execDPAPI(cs, req)
		// Single-op requests carry their own durable acknowledgment;
		// batches defer it to one Sync for the whole pipeline.
		if resp.Error == "" && dpapiCommits(req.Op) {
			if err := s.ackDurable(); err != nil {
				return errResponse(err)
			}
		}
		return resp
	case "batch":
		return s.doBatch(cs, req)
	case "repljoin":
		return s.doReplJoin(req)
	case "replstate":
		return s.doReplState()
	case "replappend":
		return s.doReplAppend(req)
	case "verify":
		return s.doVerify(req)
	default:
		return Response{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// doReplJoin registers an announcing follower on a replication primary.
// Joining is idempotent, so followers re-announce on a timer and survive
// primary restarts (the restarted primary learns its followers from the
// next round of announcements).
func (s *Server) doReplJoin(req *Request) Response {
	if s.cfg.Replicate == nil {
		return Response{Error: "repljoin: this daemon is not a replication primary"}
	}
	if req.Addr == "" {
		return Response{Error: "repljoin: missing follower address"}
	}
	s.cfg.Replicate.Join(req.Addr)
	return Response{}
}

// doReplState reports the follower's durable replicated log size — the
// offset the primary resumes streaming from.
func (s *Server) doReplState() Response {
	if s.cfg.Follower == nil {
		return Response{Error: "replstate: this daemon is not a replication follower"}
	}
	return Response{ReplSize: s.cfg.Follower.Size()}
}

// doReplAppend applies a chunk of the primary's log bytes durably, then
// drains it into the database so a replicated record is queryable here
// the moment the primary's ack covers it. A chunk may end mid-frame; the
// drain ingests the intact prefix and the torn tail completes on the next
// chunk (waldo tolerates a torn active tail by design).
func (s *Server) doReplAppend(req *Request) Response {
	if s.cfg.Follower == nil {
		return Response{Error: "replappend: this daemon is not a replication follower"}
	}
	// Fork detection runs BEFORE the durable append: a chunk whose
	// claimed MMR root disagrees with the root recomputed over the same
	// bytes must leave the follower's log untouched, or the divergence
	// would already be durable by the time it is detected.
	if err := s.checkFork(req); err != nil {
		return errResponse(err)
	}
	size, err := s.cfg.Follower.Append(req.Off, req.Data)
	if err != nil {
		resp := errResponse(err)
		resp.ReplSize = size
		return resp
	}
	if err := s.w.Drain(); err != nil {
		return errResponse(err)
	}
	return Response{ReplSize: size}
}

// errResponse renders an availability failure with its machine-readable
// code, so clients classify retryability without parsing error strings.
func errResponse(err error) Response {
	resp := Response{Error: err.Error()}
	switch {
	case errors.Is(err, ErrOverloaded):
		resp.Code = codeOverloaded
	case errors.Is(err, ErrUnavailable):
		resp.Code = codeUnavail
	case errors.Is(err, ErrReadOnly):
		resp.Code = codeReadOnly
	case errors.Is(err, ErrQuotaExceeded):
		resp.Code = codeQuota
	case errors.Is(err, replica.ErrGap):
		resp.Code = codeGap
	case errors.Is(err, ErrForked):
		resp.Code = codeForked
	}
	return resp
}

// dpapiCommits reports whether a DPAPI verb can have staged records that
// need the durable-ack barrier before the reply.
func dpapiCommits(op string) bool {
	switch strings.ToLower(op) {
	case "mkobj", "write", "freeze", "sync":
		return true
	}
	return false
}

// doHello negotiates the protocol version and describes the server's
// DPAPI surface: the volume prefix remote phantom identities come from.
// v1 clients never send hello; every v1 verb works without it. The
// answer is min(client, server) capped by Config.MaxVersion; when it
// lands at ≥3, the connection handler upgrades to binary framing right
// after this reply (a hello re-sent on an already-framed connection
// just reports the version again — there is no downgrade).
func (s *Server) doHello(req *Request) Response {
	return Response{Version: negotiateVersion(req.Version, s.cfg.MaxVersion), Volume: s.reg.prefix}
}

// negotiateVersion picks the protocol version for a hello asking for v
// against a server capped at maxV: min of the two, where a missing or
// absurd ask means "the server's best". Pure so the envelope fuzzer can
// pin its invariant (the answer is always in [1, maxV]) directly.
func negotiateVersion(v, maxV int) int {
	if v <= 0 || v > maxV {
		return maxV
	}
	return v
}

// execDPAPI runs one DPAPI op against the connection's handle table. It
// stages record commits but never calls the durable-ack barrier — the
// caller does, once per request (dispatch for single ops, doBatch once for
// a whole pipeline).
func (s *Server) execDPAPI(cs *connState, req *Request) Response {
	switch strings.ToLower(req.Op) {
	case "mkobj", "write", "freeze":
		// A follower's log is a verbatim copy of the primary's; letting a
		// client write here would fork it. Reads, revives and closes keep
		// working — that is what read failover and hedging stand on.
		if s.cfg.Follower != nil {
			return errResponse(ErrReadOnly)
		}
	}
	switch strings.ToLower(req.Op) {
	case "mkobj":
		s.mkobjs.Add(1)
		obj := s.reg.mkobj()
		ref := obj.Ref()
		// A daemon with a durable log persists the allocation itself:
		// after a crash the registry reseeds its allocator from the
		// database, and an acknowledged identity that left no record
		// would otherwise be re-issued to a different object. An
		// ephemeral (memory-backed) daemon has no restart to survive, so
		// it stages nothing.
		if s.cfg.Append != nil {
			if err := s.stageRecords([]record.Record{record.New(ref, AttrMkobj, record.Int(1))}); err != nil {
				// The client never receives the handle: give back the
				// reference mkobj took so the stillborn entry is not
				// pinned forever.
				s.reg.release(obj)
				return Response{Error: err.Error()}
			}
		}
		return Response{Handle: cs.open(obj), P: uint64(ref.PNode), Ver: uint32(ref.Version)}
	case "revive":
		s.revives.Add(1)
		obj, err := s.reg.revive(pnode.Ref{PNode: pnode.PNode(req.P), Version: pnode.Version(req.Ver)})
		if err != nil {
			return dpapiError(err)
		}
		ref := obj.Ref()
		return Response{Handle: cs.open(obj), P: uint64(ref.PNode), Ver: uint32(ref.Version)}
	case "read":
		obj, err := cs.lookup(req.Handle)
		if err != nil {
			return dpapiError(err)
		}
		data, ref := obj.readAt(req.Len, req.Off)
		return Response{N: len(data), Data: data, P: uint64(ref.PNode), Ver: uint32(ref.Version)}
	case "write":
		return s.doDPAPIWrite(cs, req)
	case "freeze":
		obj, err := cs.lookup(req.Handle)
		if err != nil {
			return dpapiError(err)
		}
		newRef, chain, err := s.reg.an.Freeze(obj)
		if err != nil {
			return dpapiError(err)
		}
		if err := s.stageRecords([]record.Record{chain}); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{Ver: uint32(newRef.Version)}
	case "sync":
		// Every disclosed record was committed at write time; pass_sync
		// only has to force the backlog onto stable storage, which the
		// caller's durable-ack barrier does.
		if _, err := cs.lookup(req.Handle); err != nil {
			return dpapiError(err)
		}
		return Response{}
	case "close":
		obj, err := cs.lookup(req.Handle)
		if err != nil {
			return dpapiError(err)
		}
		// Tombstone, not delete: later ops on this handle are ErrClosed,
		// and the object itself stays revivable (§6.5).
		cs.handles[req.Handle] = nil
		s.reg.release(obj)
		return Response{}
	default:
		return Response{Error: fmt.Sprintf("op %q is not a DPAPI verb", req.Op)}
	}
}

// doDPAPIWrite is pass_write on the wire: a record bundle and a data
// buffer applied as one unit, records first (the WAP ordering Lasagna
// enforces locally). Handle 0 is the handle-less disclose path — records
// are committed raw, with no analyzer pass, because they come from a layer
// that has already analyzed them (the v1 "append" alias and the
// distributor's materialization sink both land here).
func (s *Server) doDPAPIWrite(cs *connState, req *Request) Response {
	// A request that arrived over a v3 binary frame already carries its
	// records in native form — straight off internal/record's codec, no
	// JSON/base64 round-trip. The WireRecord path remains for JSON lines.
	recs := req.recs
	if recs == nil {
		recs = make([]record.Record, 0, len(req.Records))
		for _, wr := range req.Records {
			r, err := decodeRecord(wr)
			if err != nil {
				return Response{Error: err.Error()}
			}
			recs = append(recs, r)
		}
	}
	if req.Handle == 0 {
		if len(req.Data) > 0 {
			return Response{Error: "passd: handle-less write cannot carry data"}
		}
		if err := s.stageRecords(recs); err != nil {
			return Response{Error: err.Error()}
		}
		return Response{Appended: int64(len(recs))}
	}
	obj, err := cs.lookup(req.Handle)
	if err != nil {
		return dpapiError(err)
	}
	// Validate the data span before anything stages: pass_write is one
	// unit, so a write whose data cannot be applied must not commit its
	// records either.
	if err := checkDataSpan(len(req.Data), req.Off); err != nil {
		return Response{Error: err.Error()}
	}
	processed, subjects, err := s.reg.process(recs)
	if err != nil {
		return dpapiError(err)
	}
	if err := s.stageRecords(processed); err != nil {
		return Response{Error: err.Error()}
	}
	// Bundle subjects we only held for this write (no wire handle) have
	// served their purpose once their records are committed.
	s.reg.sweepZeroHandle(subjects)
	n, err := obj.writeData(req.Data, req.Off)
	if err != nil {
		return Response{Error: err.Error()}
	}
	// Report the object's identity after the write: processing the bundle
	// may have frozen it (cycle avoidance), and the client-side handle
	// must see the same version a local handle would.
	ref := obj.Ref()
	return Response{N: n, Appended: int64(len(processed)), P: uint64(ref.PNode), Ver: uint32(ref.Version)}
}

// doBatch executes a pipeline of DPAPI ops in order, then acknowledges
// once, durably. Each op gets its own Response slot (an op failure does
// not abort the rest — the client sees exactly which ops failed), but the
// outer acknowledgment covers every staged record with a single Sync:
// this is the round-trip/fsync amortization passbench -disclose measures.
func (s *Server) doBatch(cs *connState, req *Request) Response {
	s.batches.Add(1)
	resp := Response{Ops: make([]Response, 0, len(req.Ops))}
	commits := false
	for i := range req.Ops {
		op := &req.Ops[i]
		var r Response
		if strings.EqualFold(op.Op, "batch") {
			r = Response{Error: "passd: batches do not nest"}
		} else {
			commits = commits || dpapiCommits(op.Op)
			r = s.execDPAPI(cs, op)
		}
		r.OK = r.Error == ""
		resp.Ops = append(resp.Ops, r)
	}
	// Read-only pipelines (reads, revives, closes) stage nothing and owe
	// no fsync; mirror the single-op dispatch.
	if commits {
		if err := s.ackDurable(); err != nil {
			return errResponse(err)
		}
	}
	return resp
}

// stageRecords is the single commit path for provenance arriving over the
// wire — DPAPI writes, freezes, batches and the v1 append alias all pass
// through it. Records go to the backing log (Config.Append) when the
// daemon owns one, else straight into the database. Durability is the
// caller's ackDurable barrier, so a pipelined batch pays one Sync total.
func (s *Server) stageRecords(recs []record.Record) error {
	if len(recs) == 0 {
		return nil
	}
	// Whatever path an identity takes into the store, the registry's
	// allocator must never re-issue it.
	s.reg.observeRecords(recs)
	if s.cfg.Append != nil {
		if err := s.cfg.Append(recs); err != nil {
			return err
		}
	} else {
		s.w.DB.ApplyBatch(recs)
	}
	s.appends.Add(int64(len(recs)))
	return nil
}

// ackDurable is the durable-ack barrier: after it returns, everything
// stageRecords accepted is on stable storage — and, on a replication
// primary, durably held by the write quorum — and may be acknowledged. A
// quorum miss refuses the ack with ErrUnavailable rather than downgrading
// it: the records are safe on the primary's disk, but the promise an ack
// makes here is that they survive the primary's machine too.
func (s *Server) ackDurable() error {
	if s.cfg.Sync != nil {
		if err := s.cfg.Sync(); err != nil {
			return err
		}
	}
	if p := s.cfg.Replicate; p != nil {
		size, err := p.SourceSize()
		if err != nil {
			return err
		}
		start := time.Now()
		err = p.Commit(size)
		s.met.replCommit.Observe(time.Since(start).Seconds())
		if err != nil {
			s.quorumFailures.Add(1)
			return fmt.Errorf("%w (%v)", ErrUnavailable, err)
		}
	}
	return nil
}

// dpapiError renders a DPAPI failure with its machine-readable code so
// the client can reconstruct the dpapi sentinel error.
func dpapiError(err error) Response {
	resp := Response{Error: err.Error()}
	switch {
	case errors.Is(err, dpapi.ErrStale):
		resp.Code = codeStale
	case errors.Is(err, dpapi.ErrWrongLayer):
		resp.Code = codeWrongLayer
	case errors.Is(err, dpapi.ErrClosed):
		resp.Code = codeClosed
	case errors.Is(err, dpapi.ErrNotPassVolume):
		resp.Code = codeNotPass
	}
	return resp
}

// acquireWorker takes a worker slot, shedding load when the wait queue is
// full. The returned release func is nil when the query was shed.
func (s *Server) acquireWorker() func() {
	if s.waiting.Add(1) > int64(s.cfg.MaxQueue) {
		s.waiting.Add(-1)
		s.met.shed.With(laneQueue).Inc()
		return nil
	}
	s.workers <- struct{}{}
	s.waiting.Add(-1)
	return func() { <-s.workers }
}

func (s *Server) doQuery(req *Request) Response {
	s.queries.Add(1)
	release := s.acquireWorker()
	if release == nil {
		return errResponse(fmt.Errorf("overloaded: %w", ErrOverloaded))
	}
	defer release()

	// The heart of the serving layer: pin (or reuse) a snapshot of the
	// database and answer from it lock-free. Ingestion keeps running; this
	// query cannot see or cause a torn state. Because the snapshot is
	// immutable, everything derived from it — plans, traversal memo,
	// finished results — is shared across queries until ingestion moves
	// the generation, at which point the whole bundle is dropped.
	sn := s.currentSnapshot()
	if r, ok := sn.cachedResult(req.Query); ok {
		s.cacheHits.Add(1)
		return Response{Columns: r.cols, Rows: r.rows, Elapsed: r.elapsed}
	}
	s.cacheMisses.Add(1)

	plan, err := sn.plan(req.Query)
	if err != nil {
		s.queryErrors.Add(1)
		return Response{Error: err.Error()}
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	start := time.Now()
	res, err := plan.ExecuteWith(ctx, sn.g, sn.memo)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.timeouts.Add(1)
			return Response{Error: fmt.Sprintf("timeout: query exceeded %v", timeout)}
		}
		s.queryErrors.Add(1)
		return Response{Error: err.Error()}
	}
	cols, rows := encodeResult(res)
	r := &queryResult{cols: cols, rows: rows, elapsed: time.Since(start).Microseconds()}
	sn.storeResult(req.Query, r)
	return Response{Columns: r.cols, Rows: r.rows, Elapsed: r.elapsed}
}

func (s *Server) doExplain(req *Request) Response {
	q, err := pql.Parse(req.Query)
	if err != nil {
		return Response{Error: err.Error()}
	}
	return Response{Plan: pql.PlanQuery(q).Describe()}
}

func (s *Server) doDrain() Response {
	s.drains.Add(1)
	if err := s.w.Drain(); err != nil {
		return Response{Error: err.Error()}
	}
	records, _, _ := s.w.DB.Stats()
	return Response{Records: records}
}

// doCheckpointVerb forces a checkpoint now, regardless of triggers.
func (s *Server) doCheckpointVerb() Response {
	if s.cfg.Checkpoints == nil {
		return Response{Error: "checkpointing disabled (no checkpoint store configured)"}
	}
	info, err := s.doCheckpoint()
	if err != nil {
		return Response{Error: err.Error()}
	}
	return Response{Checkpoint: &CheckpointInfo{
		Gen:           info.Gen,
		Kind:          info.Kind.String(),
		Records:       info.Records,
		SnapshotBytes: info.SnapshotBytes,
	}}
}

// doAppend is the v1 "append" verb, retained as a deprecated alias over
// the protocol-v2 write path: a handle-less write plus the same
// durable-ack barrier every v2 op uses. Its former private decode-and-log
// implementation is gone — stageRecords/ackDurable is the one durable-ack
// code path in this server. The reply still means what it always did: an
// acknowledged record is on stable storage and survives a SIGKILL.
func (s *Server) doAppend(req *Request) Response {
	// v1 contract: append promises on-disk durability, so it stays
	// refused on a daemon with no backing log. (v2 writes accept the
	// weaker process-lifetime durability a memory-backed server offers.)
	if s.cfg.Follower != nil {
		return errResponse(ErrReadOnly)
	}
	if s.cfg.Append == nil {
		return Response{Error: "append disabled (server owns no writable log)"}
	}
	resp := s.doDPAPIWrite(&connState{}, &Request{Op: "write", Records: req.Records, recs: req.recs})
	if resp.Error != "" {
		return resp
	}
	if err := s.ackDurable(); err != nil {
		return errResponse(err)
	}
	return Response{Appended: resp.Appended}
}

func (s *Server) snapshotStats() *Stats {
	// DB.Stats reads the same counters the view would pin, without bumping
	// the store's write epoch (a view taken here would force the ingest
	// writer to re-clone every node it touches next batch, for nothing).
	records, prov, idx := s.w.DB.Stats()
	st := &Stats{
		Records:     records,
		ProvBytes:   prov,
		IdxBytes:    idx,
		Queries:     s.queries.Load(),
		QueryErrors: s.queryErrors.Load(),
		Timeouts:    s.timeouts.Load(),
		Shed:        s.met.shed.Total(),
		Drains:      s.drains.Load(),
		Conns:       int64(s.ConnCount()),
		V3Conns:     s.v3Conns.Load(),
		Workers:     s.cfg.Workers,
		CacheHits:   s.cacheHits.Load(),
		CacheMisses: s.cacheMisses.Load(),

		Gen:            s.w.DB.Gen(),
		EntriesDecoded: s.w.EntriesDecoded(),

		Checkpoints:           s.checkpoints.Load(),
		CheckpointErrors:      s.checkpointErrors.Load(),
		LastCheckpointGen:     s.lastCkptGen.Load(),
		CheckpointDeltas:      s.checkpointDeltas.Load(),
		CheckpointFullBytes:   s.checkpointFullBytes.Load(),
		CheckpointDeltaBytes:  s.checkpointDeltaBytes.Load(),
		CheckpointSweepErrors: s.checkpointSweepErrors.Load(),
		Appends:               s.appends.Load(),

		Mkobjs:  s.mkobjs.Load(),
		Revives: s.revives.Load(),
		Batches: s.batches.Load(),
		Objects: s.reg.count(),

		Verbs:         s.met.verbCounts(),
		QuotaRefusals: s.met.quotaRefused.Total(),
		Tenants:       s.met.tenantSnapshot(),
	}
	if p := s.cfg.Replicate; p != nil {
		st.Role = "primary"
		st.ReplQuorum = p.Quorum()
		st.QuorumFailures = s.quorumFailures.Load()
		var connected int64
		followers := p.Followers()
		for _, f := range followers {
			if f.Connected {
				connected++
			}
		}
		st.ReplFollowers = int64(len(followers))
		st.ReplConnected = connected
	}
	if s.cfg.Follower != nil {
		st.Role = "follower"
		st.ReplBytes = s.cfg.Follower.Size()
	}
	if r := s.cfg.Recovered; r != nil && r.DB != nil {
		st.RecoveredGen = r.Gen
		st.RecoveredRecords = r.Records
		st.ResumeBytes = r.ResumeBytes()
	}
	if r := s.cfg.Recovered; r != nil {
		st.SkippedGens = int64(len(r.Skipped))
		if len(r.Skipped) > 0 {
			st.RecoverySkips = make(map[string]int64, len(r.Skipped))
			for _, sk := range r.Skipped {
				st.RecoverySkips[skipClass(sk.Class)]++
			}
		}
	}
	if t := s.cfg.Tamper; t != nil {
		m := t.MMR()
		root := m.Root()
		st.MMRLeaves = m.Count()
		st.MMRRoot = hex.EncodeToString(root[:])
		st.MMRPruned = m.Pruned()
	}
	st.ForkRefusals = s.forkRefusals.Load()
	st.Verifies = s.verifies.Load()
	return st
}

// skipClass normalizes a recovery skip's class label for the bounded
// label sets STATS and /metrics share (pre-classification generations
// recorded no class).
func skipClass(c string) string {
	if c == "" {
		return checkpoint.SkipOther
	}
	return c
}
