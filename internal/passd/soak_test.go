package passd

// Randomized multiplexing soak: many concurrent sessions drive mixed
// verbs over shared v3 connections while the network is repeatedly cut
// underneath them (kills, torn frames, blackholes, partitions). The test
// asserts the mux invariants the protocol's correctness rests on:
//
//   - stream IDs are never reused while a connection lives (per-mux
//     m.next only grows),
//   - a poisoned mux leaks no waiters (fail drains the table),
//   - every caller gets exactly one terminal answer — success or error —
//     never a hang (the workers' WaitGroup finishes under a watchdog),
//   - after the faults heal, the same daemon still answers and returns
//     results identical to the pre-fault evaluation.
//
// Runs ~4s by default (1s under -short); PASSD_SOAK_SECS overrides:
// PASSD_SOAK_SECS=30 go test -race -run TestMuxFaultSoak ./internal/passd

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"passv2/internal/pnode"
	"passv2/internal/record"
)

// soakBatch builds a small disclosure bundle private to one worker, off
// in pnode space where it cannot perturb the ancestry query the test
// re-checks after healing.
func soakBatch(worker, round int) []record.Record {
	ref := pnode.Ref{PNode: pnode.PNode(uint64(1<<40) + uint64(worker)<<20 + uint64(round)), Version: 1}
	return []record.Record{
		record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/soak/%d/%d", worker, round))),
		record.New(ref, record.AttrType, record.StringVal(record.TypeFile)),
	}
}

func soakSeconds(t *testing.T) float64 {
	if env := os.Getenv("PASSD_SOAK_SECS"); env != "" {
		secs, err := strconv.ParseFloat(env, 64)
		if err != nil {
			t.Fatalf("bad PASSD_SOAK_SECS %q: %v", env, err)
		}
		return secs
	}
	if testing.Short() {
		return 1
	}
	return 4
}

func TestMuxFaultSoak(t *testing.T) {
	secs := soakSeconds(t)
	w, query := testWaldo(64)
	srv, flt := startFaultyServer(t, w, Config{})

	const nClients = 4
	const nWorkers = 24
	clients := make([]*Client, nClients)
	for i := range clients {
		c, err := DialOptions(srv.Addr(), Options{
			MaxRetries:     8,
			RetryBase:      2 * time.Millisecond,
			RetryMax:       50 * time.Millisecond,
			RequestTimeout: 2 * time.Second,
			DeadlineGrace:  500 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("dial client %d: %v", i, err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
	}

	// Ground truth before any fault is injected.
	res, err := clients[0].Query(query)
	if err != nil {
		t.Fatalf("pre-fault query: %v", err)
	}
	expected := res.Format()

	deadline := time.Now().Add(time.Duration(secs * float64(time.Second)))

	// Mux observer: samples every client's live mux and asserts stream
	// IDs only ever grow. Muxes retired by redials stay in the map for
	// the post-soak leak check.
	type muxSample struct {
		lastNext uint32
	}
	seen := make(map[*clientMux]*muxSample)
	obsDone := make(chan struct{})
	sample := func() {
		for _, c := range clients {
			c.mu.Lock()
			m := c.mux
			c.mu.Unlock()
			if m == nil {
				continue
			}
			m.mu.Lock()
			next := m.next
			m.mu.Unlock()
			s, ok := seen[m]
			if !ok {
				seen[m] = &muxSample{lastNext: next}
				continue
			}
			if next < s.lastNext {
				t.Errorf("stream counter went backwards on a live mux: %d -> %d (stream-ID reuse)", s.lastNext, next)
			}
			s.lastNext = next
		}
	}
	go func() {
		defer close(obsDone)
		for time.Now().Before(deadline.Add(100 * time.Millisecond)) {
			sample()
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// Fault injector: a rolling sequence of cuts with short heals between
	// them, so connections keep dying mid-flight and redialing.
	faultsDone := make(chan struct{})
	go func() {
		defer close(faultsDone)
		rng := rand.New(rand.NewSource(7))
		for time.Now().Before(deadline) {
			time.Sleep(time.Duration(40+rng.Intn(120)) * time.Millisecond)
			switch rng.Intn(5) {
			case 0:
				flt.KillConns()
			case 1:
				flt.TearAfter(int64(200 + rng.Intn(4000)))
			case 2:
				flt.BlackholeWrites(true)
			case 3:
				flt.Partition(true)
			case 4:
				flt.SetWriteDelay(time.Duration(1+rng.Intn(5)) * time.Millisecond)
			}
			time.Sleep(time.Duration(20+rng.Intn(80)) * time.Millisecond)
			flt.Heal()
		}
		flt.Heal()
	}()

	// The swarm: workers deal mixed verbs across the shared clients.
	// Errors are expected — connections are being cut — but every call
	// must return, and the WaitGroup below proves each caller got exactly
	// one terminal answer.
	var ops, fails int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for wkr := 0; wkr < nWorkers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + wkr)))
			c := clients[wkr%nClients]
			var nOps, nFails int64
			for round := 0; time.Now().Before(deadline); round++ {
				var err error
				switch rng.Intn(6) {
				case 0:
					err = c.Ping()
				case 1:
					_, err = c.Query(query)
				case 2:
					_, err = c.Query("select ! syntax error !") // server-side refusal path
					err = nil                                   // a parse error IS a terminal answer
				case 3:
					_, err = c.Stats()
				case 4:
					_, err = c.Explain(query)
				case 5:
					err = c.AppendProvenance(soakBatch(wkr, round))
				}
				nOps++
				if err != nil {
					nFails++
				}
			}
			mu.Lock()
			ops += nOps
			fails += nFails
			mu.Unlock()
		}(wkr)
	}

	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()
	select {
	case <-workersDone:
	case <-time.After(time.Duration(secs*float64(time.Second)) + 60*time.Second):
		t.Fatal("soak workers hung: some caller never received a terminal answer")
	}
	<-faultsDone
	<-obsDone
	flt.Heal()

	if ops == 0 {
		t.Fatal("soak made no calls")
	}
	if fails == ops {
		t.Fatalf("all %d soak calls failed; the client never made progress between faults", ops)
	}
	t.Logf("soak: %d calls, %d failed terminally, %d muxes observed", ops, fails, len(seen))

	// Recovery: the healed daemon must answer with the pre-fault result.
	var after string
	for i := 0; ; i++ {
		res, err := clients[0].Query(query)
		if err == nil {
			after = res.Format()
			break
		}
		if i >= 20 {
			t.Fatalf("query never recovered after heal: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if after != expected {
		t.Fatalf("post-soak query result differs from pre-fault evaluation:\nbefore: %s\nafter:  %s", expected, after)
	}

	// Leak check: take one final sample, then audit every mux this soak
	// ever saw. Live muxes must be idle (no leaked waiters after
	// quiesce); poisoned muxes must have drained their waiter tables.
	sample()
	live := make(map[*clientMux]bool)
	for _, c := range clients {
		c.mu.Lock()
		if c.mux != nil {
			live[c.mux] = true
		}
		c.mu.Unlock()
	}
	for m := range seen {
		m.mu.Lock()
		waiters, muxErr := len(m.waiters), m.err
		m.mu.Unlock()
		if waiters != 0 {
			t.Errorf("mux (live=%v, err=%v) leaked %d waiters after quiesce", live[m], muxErr, waiters)
		}
		if !live[m] && muxErr == nil {
			t.Errorf("retired mux was replaced without being poisoned")
		}
	}
}
