package passd

// Tamper evidence on the wire (DESIGN.md §13): the "verify" verb serves
// signed roots and Merkle proofs over the daemon's provenance log, and
// proof-carrying replicated appends let a follower refuse a forked
// primary before the divergence reaches its durable log.

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"time"

	"passv2/internal/mmr"
	"passv2/internal/signer"
)

// TamperConfig wires a server to the tamper-evidence stack built in
// internal/mmr, internal/signer and internal/provlog.
type TamperConfig struct {
	// Volume names the provenance-log volume the MMR covers; it is the
	// volume signed root statements assert about.
	Volume string
	// MMR returns the live Merkle mountain range over the volume's log.
	// It is a func, not a pointer, because Rehydrate may swap the range
	// for a freshly rebuilt one; callers must re-fetch after rehydrating.
	MMR func() *mmr.MMR
	// Rehydrate upgrades a pruned (peak-file-resumed) range to full proof
	// capability by rescanning the log. Nil means proofs on a pruned
	// range simply fail with mmr.ErrPruned.
	Rehydrate func() error
	// Signer signs ad-hoc root statements for the "verify" verb. Nil
	// serves unsigned roots (proofs still work — they are self-verifying
	// against a root obtained out of band).
	Signer *signer.Identity
	// SaveState persists the MMR peak snapshot after a checkpoint
	// commits, so the next boot resumes the range in O(log n) instead of
	// rescanning the whole log. Failures are housekeeping lag, counted
	// but never fatal.
	SaveState func() error
}

// ErrForked is a follower refusing replicated bytes whose claimed MMR
// root disagrees with the root the follower recomputed over the same
// prefix: the primary's history and the follower's history are different
// logs. Never retryable — resending the same bytes cannot reconcile two
// divergent histories; an operator must re-seed one side.
var ErrForked = errors.New("passd: replicated stream diverges from local history (forked)")

// checkFork verifies a proof-carrying "replappend" against the follower's
// own MMR. Chunks without a root claim (an older primary, or proofs not
// configured on either side) pass through unchecked — the feature
// degrades to plain replication, it never wedges it.
func (s *Server) checkFork(req *Request) error {
	f := s.cfg.Feeder
	if f == nil || req.MMRRoot == "" {
		return nil
	}
	claimed, err := hex.DecodeString(req.MMRRoot)
	if err != nil || len(claimed) != len(mmr.Hash{}) {
		return fmt.Errorf("replappend: malformed mmr_root claim: %w", ErrForked)
	}
	// A chunk starting past the fed prefix is a stream gap, not a fork:
	// skip the check and let the durable log refuse it with its usual gap
	// error, so the primary re-reads our state and backfills.
	if req.Off > f.Expected() {
		return nil
	}
	// Feed before comparing: the claim covers the prefix *including* this
	// chunk. Feed poisons itself on a frame whose CRC fails — bytes the
	// primary never wrote — and stays poisoned after a detected fork.
	if err := f.Feed(req.Off, req.Data); err != nil {
		s.forkRefusals.Add(1)
		return fmt.Errorf("replappend: %v: %w", err, ErrForked)
	}
	got, err := f.RootAt(req.MMRSize)
	if err != nil {
		s.forkRefusals.Add(1)
		f.Poison(fmt.Errorf("%w: primary claims %d leaves: %v", ErrForked, req.MMRSize, err))
		return fmt.Errorf("replappend: root claim at %d leaves unanswerable (%v): %w", req.MMRSize, err, ErrForked)
	}
	var want mmr.Hash
	copy(want[:], claimed)
	if got != want {
		s.forkRefusals.Add(1)
		f.Poison(fmt.Errorf("%w: root mismatch at %d leaves", ErrForked, req.MMRSize))
		return fmt.Errorf("replappend: root mismatch at %d leaves: primary claims %s, local log has %s: %w",
			req.MMRSize, req.MMRRoot, hex.EncodeToString(got[:]), ErrForked)
	}
	return nil
}

// rehydrated runs op against the live MMR, rehydrating once and retrying
// if the range is pruned. The rehydrate mutex keeps concurrent verifies
// from rescanning the log twice; the double-check inside it makes the
// second waiter a no-op.
func (s *Server) rehydrated(op func(m *mmr.MMR) error) error {
	t := s.cfg.Tamper
	err := op(t.MMR())
	if !errors.Is(err, mmr.ErrPruned) || t.Rehydrate == nil {
		return err
	}
	s.rehydrateMu.Lock()
	if t.MMR().Pruned() {
		if rerr := t.Rehydrate(); rerr != nil {
			s.rehydrateMu.Unlock()
			return fmt.Errorf("rehydrating pruned range: %v (proof request: %w)", rerr, err)
		}
	}
	s.rehydrateMu.Unlock()
	return op(t.MMR())
}

// doVerify serves the "verify" verb: a signed root statement, an
// inclusion proof for one record position, or a consistency proof
// between two tree sizes. Everything returned is client-checkable with
// internal/mmr's verifiers and internal/signer's Verify — the daemon is
// not trusted, it is audited.
func (s *Server) doVerify(req *Request) Response {
	t := s.cfg.Tamper
	if t == nil {
		return Response{Error: "verify: tamper evidence is not enabled on this daemon"}
	}
	s.verifies.Add(1)
	op := strings.ToLower(req.VerifyOp)
	if op == "" {
		op = "root"
	}
	switch op {
	case "root":
		return s.verifyRoot(req, t)
	case "include":
		return s.verifyInclude(req, t)
	case "consistency":
		return s.verifyConsistency(req, t)
	default:
		return Response{Error: fmt.Sprintf("verify: unknown op %q (want root, include or consistency)", req.VerifyOp)}
	}
}

func (s *Server) verifyRoot(req *Request, t *TamperConfig) Response {
	m := t.MMR()
	size := req.MMRSize
	if size == 0 {
		size = m.Count()
	}
	var root mmr.Hash
	err := s.rehydrated(func(m *mmr.MMR) error {
		var rerr error
		root, rerr = m.RootAt(size)
		return rerr
	})
	if err != nil {
		return Response{Error: "verify: " + err.Error()}
	}
	wv := &WireVerify{
		Op:     "root",
		Volume: t.Volume,
		Size:   size,
		Root:   hex.EncodeToString(root[:]),
	}
	if id := t.Signer; id != nil {
		st := signer.Statement{
			Volume:    t.Volume,
			Root:      root,
			Size:      size,
			Gen:       0, // ad-hoc wire statement, not a checkpoint
			Timestamp: uint64(time.Now().Unix()),
		}
		sig := id.Sign(st)
		wv.DeviceID = hex.EncodeToString(id.DeviceID[:])
		wv.PubKey = hex.EncodeToString(id.Pub)
		wv.Sig = hex.EncodeToString(sig)
		wv.Timestamp = st.Timestamp
	}
	return Response{Verify: wv}
}

func (s *Server) verifyInclude(req *Request, t *TamperConfig) Response {
	size := req.MMRSize
	if size == 0 {
		size = t.MMR().Count()
	}
	var (
		proof mmr.InclusionProof
		leaf  mmr.Hash
		root  mmr.Hash
	)
	err := s.rehydrated(func(m *mmr.MMR) error {
		var rerr error
		if proof, rerr = m.ProveAt(req.VerifyIndex, size); rerr != nil {
			return rerr
		}
		if leaf, rerr = m.Leaf(req.VerifyIndex); rerr != nil {
			return rerr
		}
		root, rerr = m.RootAt(size)
		return rerr
	})
	if err != nil {
		return Response{Error: "verify: " + err.Error()}
	}
	return Response{Verify: &WireVerify{
		Op:     "include",
		Volume: t.Volume,
		Size:   size,
		Root:   hex.EncodeToString(root[:]),
		Index:  req.VerifyIndex,
		Leaf:   hex.EncodeToString(leaf[:]),
		Path:   hexHashes(proof.Path),
		Peaks:  hexHashes(proof.Peaks),
	}}
}

func (s *Server) verifyConsistency(req *Request, t *TamperConfig) Response {
	from, to := req.VerifyFrom, req.VerifyTo
	if to == 0 {
		to = t.MMR().Count()
	}
	var (
		proof   mmr.ConsistencyProof
		oldRoot mmr.Hash
		newRoot mmr.Hash
	)
	err := s.rehydrated(func(m *mmr.MMR) error {
		var rerr error
		if proof, rerr = m.Consistency(from, to); rerr != nil {
			return rerr
		}
		if oldRoot, rerr = m.RootAt(from); rerr != nil {
			return rerr
		}
		newRoot, rerr = m.RootAt(to)
		return rerr
	})
	if err != nil {
		return Response{Error: "verify: " + err.Error()}
	}
	return Response{Verify: &WireVerify{
		Op:       "consistency",
		Volume:   t.Volume,
		Size:     to,
		Root:     hex.EncodeToString(newRoot[:]),
		OldSize:  from,
		OldRoot:  hex.EncodeToString(oldRoot[:]),
		OldPeaks: hexHashes(proof.OldPeaks),
		Fillers:  hexHashes(proof.Fillers),
	}}
}

func hexHashes(hs []mmr.Hash) []string {
	if hs == nil {
		return nil
	}
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = hex.EncodeToString(h[:])
	}
	return out
}

func decodeHexHashes(ss []string) ([]mmr.Hash, error) {
	if ss == nil {
		return nil, nil
	}
	out := make([]mmr.Hash, len(ss))
	for i, s := range ss {
		b, err := hex.DecodeString(s)
		if err != nil || len(b) != len(mmr.Hash{}) {
			return nil, fmt.Errorf("passd: malformed hash %q", s)
		}
		copy(out[i][:], b)
	}
	return out, nil
}

func decodeHexHash(s string) (mmr.Hash, error) {
	var h mmr.Hash
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(h) {
		return h, fmt.Errorf("passd: malformed hash %q", s)
	}
	copy(h[:], b)
	return h, nil
}

// RootHash decodes the answer's root.
func (w *WireVerify) RootHash() (mmr.Hash, error) { return decodeHexHash(w.Root) }

// Inclusion reconstructs the native inclusion proof and the proven leaf
// from an op:"include" answer, ready for mmr.VerifyInclusion.
func (w *WireVerify) Inclusion() (mmr.InclusionProof, mmr.Hash, error) {
	leaf, err := decodeHexHash(w.Leaf)
	if err != nil {
		return mmr.InclusionProof{}, leaf, err
	}
	path, err := decodeHexHashes(w.Path)
	if err != nil {
		return mmr.InclusionProof{}, leaf, err
	}
	peaks, err := decodeHexHashes(w.Peaks)
	if err != nil {
		return mmr.InclusionProof{}, leaf, err
	}
	return mmr.InclusionProof{Index: w.Index, Size: w.Size, Path: path, Peaks: peaks}, leaf, nil
}

// Consistency reconstructs the native consistency proof from an
// op:"consistency" answer, ready for mmr.VerifyConsistency (the old root
// is in OldRoot, the new one in Root).
func (w *WireVerify) Consistency() (mmr.ConsistencyProof, error) {
	oldPeaks, err := decodeHexHashes(w.OldPeaks)
	if err != nil {
		return mmr.ConsistencyProof{}, err
	}
	fillers, err := decodeHexHashes(w.Fillers)
	if err != nil {
		return mmr.ConsistencyProof{}, err
	}
	return mmr.ConsistencyProof{OldSize: w.OldSize, NewSize: w.Size, OldPeaks: oldPeaks, Fillers: fillers}, nil
}

// Statement reconstructs the signed root statement and its signature
// bytes from an op:"root" answer, ready for signer.Verify against the
// decoded public key.
func (w *WireVerify) Statement() (signer.Statement, []byte, []byte, error) {
	st := signer.Statement{Volume: w.Volume, Size: w.Size, Gen: 0, Timestamp: w.Timestamp}
	root, err := decodeHexHash(w.Root)
	if err != nil {
		return st, nil, nil, err
	}
	st.Root = root
	id, err := hex.DecodeString(w.DeviceID)
	if err != nil || len(id) != len(st.DeviceID) {
		return st, nil, nil, fmt.Errorf("passd: malformed device id %q", w.DeviceID)
	}
	copy(st.DeviceID[:], id)
	pub, err := hex.DecodeString(w.PubKey)
	if err != nil {
		return st, nil, nil, fmt.Errorf("passd: malformed public key %q", w.PubKey)
	}
	sig, err := hex.DecodeString(w.Sig)
	if err != nil {
		return st, nil, nil, fmt.Errorf("passd: malformed signature %q", w.Sig)
	}
	return st, sig, pub, nil
}
