package passd

// Tamper-evidence tests at the daemon layer: the verify verb serves
// proofs a client can check locally, replicated followers converge on
// the primary's MMR root, and a forked primary is refused with the
// machine-readable "forked" code — after which quorum commits fail
// closed instead of acknowledging divergent histories.

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"testing"
	"time"

	"passv2/internal/mmr"
	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/replica"
	"passv2/internal/signer"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// tamperNode is one tamper-evident in-process daemon.
type tamperNode struct {
	*replNode
	dfs *vfs.DirFS
	log *provlog.Writer
	id  *signer.Identity
}

// startTamperPrimary builds a replication primary with the full tamper
// stack, wired exactly as cmd/passd does: writer-attached MMR, signed
// verify verb, and a proof-carrying replication source.
func startTamperPrimary(t *testing.T, quorum int, commitTimeout time.Duration) (*tamperNode, *replica.Primary) {
	t.Helper()
	dfs, err := vfs.NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id, err := signer.LoadOrCreate(dfs, "/keys")
	if err != nil {
		t.Fatal(err)
	}
	log, err := provlog.NewWriter(dfs, "/", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.AttachMMR(mmr.New(), "logdir"); err != nil {
		t.Fatal(err)
	}
	w := waldo.New()
	w.Attach(waldo.NewLogVolume("logdir", dfs, log))
	appendFn := func(recs []record.Record) error {
		for _, r := range recs {
			if err := log.AppendRecord(0, r); err != nil {
				return err
			}
		}
		return nil
	}
	src, err := replica.OpenFileSource(dfs, "/"+provlog.CurrentName)
	if err != nil {
		t.Fatal(err)
	}
	psrc := replica.WithProofs(src, func(end int64) (uint64, [32]byte, bool) {
		m := log.MMR()
		if m == nil {
			return 0, [32]byte{}, false
		}
		n, ok := m.LeavesAtOffset(end)
		if !ok {
			return 0, [32]byte{}, false
		}
		root, err := m.RootAt(n)
		if err != nil {
			return 0, [32]byte{}, false
		}
		return n, root, true
	})
	prim := replica.NewPrimary(psrc, replica.Config{
		Quorum:        quorum,
		CommitTimeout: commitTimeout,
		Dial: PeerDialer(Options{
			DialTimeout:    time.Second,
			RequestTimeout: 2 * time.Second,
			RetryBase:      5 * time.Millisecond,
		}),
		RetryBase: 10 * time.Millisecond,
		RetryMax:  200 * time.Millisecond,
	})
	n := startReplServer(t, w, Config{
		Append: appendFn, Sync: log.Sync, Replicate: prim,
		Tamper: &TamperConfig{Volume: "logdir", MMR: log.MMR, Rehydrate: log.Rehydrate, Signer: id},
	})
	t.Cleanup(func() { prim.Close() })
	return &tamperNode{replNode: n, dfs: dfs, log: log, id: id}, prim
}

// startTamperFollower builds a follower with a live tail feeder, so every
// proof-carrying replicated append is root-checked before it is durable.
func startTamperFollower(t *testing.T) *tamperNode {
	t.Helper()
	dfs, err := vfs.NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	log, err := provlog.NewWriter(dfs, "/", 0)
	if err != nil {
		t.Fatal(err)
	}
	feeder, err := provlog.LoadFeeder(dfs, "/", "logdir")
	if err != nil {
		t.Fatal(err)
	}
	w := waldo.New()
	w.Attach(waldo.NewLogVolume("logdir", dfs, log))
	flog, err := replica.OpenFollowerLog(dfs, "/"+provlog.CurrentName)
	if err != nil {
		t.Fatal(err)
	}
	n := startReplServer(t, w, Config{
		Follower: flog,
		Feeder:   feeder,
		Tamper:   &TamperConfig{Volume: "logdir", MMR: feeder.MMR},
	})
	return &tamperNode{replNode: n, dfs: dfs, log: log}
}

func startTamperGroup(t *testing.T, quorum, followers int, commitTimeout time.Duration) (*tamperNode, []*tamperNode) {
	t.Helper()
	prim, _ := startTamperPrimary(t, quorum, commitTimeout)
	fs := make([]*tamperNode, followers)
	for i := range fs {
		fs[i] = startTamperFollower(t)
		if err := Announce(prim.srv.Addr(), fs[i].srv.Addr(), 2*time.Second); err != nil {
			t.Fatalf("announce follower %d: %v", i, err)
		}
	}
	return prim, fs
}

// waitMMR polls a node's stats until its MMR reaches want leaves and
// returns the root at that point.
func waitMMR(t *testing.T, c *Client, want uint64) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := c.Stats()
		if err == nil && st.MMRLeaves == want {
			return st.MMRRoot
		}
		if time.Now().After(deadline) {
			t.Fatalf("MMR never reached %d leaves (last: %+v / %v)", want, st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestVerifyVerbServesCheckableProofs: everything the verify verb
// returns is verifiable client-side with internal/mmr and
// internal/signer — signed root statements, inclusion proofs, and
// consistency proofs between two sizes the client picked.
func TestVerifyVerbServesCheckableProofs(t *testing.T) {
	prim, _ := startTamperPrimary(t, 1, time.Second)
	c := dialClient(t, prim.srv)

	if _, err := c.Append(replRecs(0, 15)); err != nil {
		t.Fatal(err)
	}
	first, err := c.VerifyRoot(0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Size != 30 { // replRecs writes 2 records per item
		t.Fatalf("signed root covers %d leaves, want 30", first.Size)
	}
	stmt, sig, pub, err := first.Statement()
	if err != nil {
		t.Fatal(err)
	}
	if !signer.Verify(ed25519.PublicKey(pub), stmt, sig) {
		t.Fatal("root statement signature does not verify")
	}
	stmt.Size++ // any altered claim must break the signature
	if signer.Verify(ed25519.PublicKey(pub), stmt, sig) {
		t.Fatal("signature verified a modified statement")
	}

	if _, err := c.Append(replRecs(15, 15)); err != nil {
		t.Fatal(err)
	}

	inc, err := c.VerifyInclusion(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	proof, leaf, err := inc.Inclusion()
	if err != nil {
		t.Fatal(err)
	}
	root, err := inc.RootHash()
	if err != nil {
		t.Fatal(err)
	}
	if err := mmr.VerifyInclusion(root, leaf, proof); err != nil {
		t.Fatalf("inclusion proof rejected: %v", err)
	}
	leaf[0] ^= 1 // a different record cannot ride the same proof
	if err := mmr.VerifyInclusion(root, leaf, proof); err == nil {
		t.Fatal("inclusion proof accepted a modified leaf")
	}

	cons, err := c.VerifyConsistency(first.Size, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cons.Size != 60 || cons.OldSize != first.Size {
		t.Fatalf("consistency spans %d→%d, want %d→60", cons.OldSize, cons.Size, first.Size)
	}
	if cons.OldRoot != first.Root {
		t.Fatalf("old root %s, want the previously signed %s", cons.OldRoot, first.Root)
	}
	cp, err := cons.Consistency()
	if err != nil {
		t.Fatal(err)
	}
	oldRoot, err := decodeHexHash(cons.OldRoot)
	if err != nil {
		t.Fatal(err)
	}
	newRoot, err := cons.RootHash()
	if err != nil {
		t.Fatal(err)
	}
	if err := mmr.VerifyConsistency(oldRoot, newRoot, cp); err != nil {
		t.Fatalf("consistency proof rejected: %v", err)
	}

	// A daemon without tamper evidence refuses the verb outright.
	plain := startServer(t, waldo.New(), Config{})
	pc := dialClient(t, plain)
	if _, err := pc.VerifyRoot(0); err == nil {
		t.Fatal("verify verb answered on a daemon without tamper evidence")
	}
}

// TestReplicatedRootsConverge: followers fed through proof-carrying
// replicated appends recompute exactly the primary's MMR — same leaf
// count, same root — with zero fork refusals along the way.
func TestReplicatedRootsConverge(t *testing.T) {
	prim, fs := startTamperGroup(t, 2, 2, 2*time.Second)
	c := dialClient(t, prim.srv)

	if _, err := c.Append(replRecs(0, 40)); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.MMRLeaves != 80 || st.MMRRoot == "" || st.MMRPruned {
		t.Fatalf("primary MMR stats: %+v, want 80 unpruned leaves with a root", st)
	}
	for i, f := range fs {
		fc := dialClient(t, f.srv)
		root := waitMMR(t, fc, st.MMRLeaves)
		if root != st.MMRRoot {
			t.Fatalf("follower %d root %s, primary %s: same bytes, different history", i, root, st.MMRRoot)
		}
		fst, err := fc.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if fst.ForkRefusals != 0 {
			t.Fatalf("follower %d refused %d appends during clean replication", i, fst.ForkRefusals)
		}
		// The follower serves checkable proofs over its copy too.
		inc, err := fc.VerifyInclusion(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		proof, leaf, err := inc.Inclusion()
		if err != nil {
			t.Fatal(err)
		}
		root2, err := inc.RootHash()
		if err != nil {
			t.Fatal(err)
		}
		if err := mmr.VerifyInclusion(root2, leaf, proof); err != nil {
			t.Fatalf("follower %d inclusion proof rejected: %v", i, err)
		}
	}
}

// TestForkedPrimaryRefused: a follower that already holds history from
// primary A refuses bytes from a divergent primary B with the
// non-retryable "forked" error, keeps serving reads, and — because the
// feeder stays poisoned until an operator re-seeds it — subsequent
// quorum commits fail closed rather than acknowledging a fork.
func TestForkedPrimaryRefused(t *testing.T) {
	prim, fs := startTamperGroup(t, 2, 1, 700*time.Millisecond)
	f := fs[0]
	c := dialClient(t, prim.srv)

	// Shared history, then divergence: A appends X; B (same history,
	// byte-identical log prefix) appends Y of the same encoded length.
	if _, err := c.Append(replRecs(0, 10)); err != nil {
		t.Fatal(err)
	}
	divergeA := []record.Record{record.New(pnode.Ref{PNode: 900, Version: 1}, record.AttrName, record.StringVal("/fork/AAAA"))}
	divergeB := []record.Record{record.New(pnode.Ref{PNode: 900, Version: 1}, record.AttrName, record.StringVal("/fork/BBBB"))}
	if _, err := c.Append(divergeA); err != nil {
		t.Fatal(err)
	}
	fc := dialClient(t, f.srv)
	pst, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	waitMMR(t, fc, pst.MMRLeaves)

	// Primary B: identical log up to the divergence point, then its own
	// record, then one more — the chunk B would replicate next.
	bfs, err := vfs.NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	blog, err := provlog.NewWriter(bfs, "/", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := blog.AttachMMR(mmr.New(), "logdir"); err != nil {
		t.Fatal(err)
	}
	for _, r := range replRecs(0, 10) {
		if err := blog.AppendRecord(0, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := blog.AppendRecord(0, divergeB[0]); err != nil {
		t.Fatal(err)
	}
	forkOff := blog.GlobalSize() // == follower's size: equal-length divergence
	if err := blog.AppendRecord(0, record.New(pnode.Ref{PNode: 901, Version: 1}, record.AttrName, record.StringVal("/fork/next"))); err != nil {
		t.Fatal(err)
	}
	if err := blog.Sync(); err != nil {
		t.Fatal(err)
	}
	bbytes, err := vfs.ReadFile(bfs, "/"+provlog.CurrentName)
	if err != nil {
		t.Fatal(err)
	}
	bm := blog.MMR()
	broot, err := bm.RootAt(bm.Count())
	if err != nil {
		t.Fatal(err)
	}

	// B's next chunk lands at the follower's exact write offset, so this
	// is not a gap — it is two histories disagreeing about the past.
	fp := replPeer{c: fc}
	if _, err := fp.AppendProof(forkOff, bbytes[forkOff:], bm.Count(), broot); !errors.Is(err, ErrForked) {
		t.Fatalf("forked append: %v, want ErrForked", err)
	}

	// Refused loudly, not wedged: reads and pings still work.
	if err := fc.Ping(); err != nil {
		t.Fatalf("follower unresponsive after fork refusal: %v", err)
	}
	if _, err := fc.Query(replQuery(5)); err != nil {
		t.Fatalf("follower stopped serving reads after fork refusal: %v", err)
	}
	fst, err := fc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if fst.ForkRefusals == 0 {
		t.Fatal("fork refusal not counted in stats")
	}

	// Fail closed: with its only follower poisoned, the primary cannot
	// reach quorum 2, so acknowledged writes stop instead of lying.
	if _, err := c.Append(replRecs(50, 5)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("append with a poisoned follower: %v, want ErrUnavailable", err)
	}
}

// TestForkRefusalSurvivesRestartOfFollower: the poison is in-memory
// state guarding a durable log that was never contaminated — a restarted
// follower rebuilds its feeder from disk and replicates cleanly again
// from a non-forked primary.
func TestForkRefusalSurvivesRestartOfFollower(t *testing.T) {
	prim, fs := startTamperGroup(t, 1, 1, time.Second)
	f := fs[0]
	c := dialClient(t, prim.srv)

	if _, err := c.Append(replRecs(0, 5)); err != nil {
		t.Fatal(err)
	}
	fc := dialClient(t, f.srv)
	pst, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	waitMMR(t, fc, pst.MMRLeaves)

	// Poison the feeder with a garbage chunk claiming a root.
	var bogus [32]byte
	bogus[0] = 0xff
	fp := replPeer{c: fc}
	if _, err := fp.AppendProof(f.srv.cfg.Feeder.Expected(), []byte("not a frame"), 99, bogus); !errors.Is(err, ErrForked) {
		t.Fatalf("bogus chunk: %v, want ErrForked", err)
	}

	// Rebuild the feeder from the untouched on-disk log, as a restart
	// would, and verify it matches the primary again.
	reFeeder, err := provlog.LoadFeeder(f.dfs, "/", "logdir")
	if err != nil {
		t.Fatal(err)
	}
	m := reFeeder.MMR()
	root, err := m.RootAt(m.Count())
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%x", root); got != pst.MMRRoot || m.Count() != pst.MMRLeaves {
		t.Fatalf("rebuilt feeder at %d leaves root %s; primary at %d leaves root %s",
			m.Count(), got, pst.MMRLeaves, pst.MMRRoot)
	}
}
