package passd

// Process-level audit test: a real passd writes a signed, checkpointed
// provenance log; it is SIGKILLed mid-ingest; the passverify CLI then
// audits the survivors offline and must pass — and must fail loudly when
// a single early byte (inside the signed region) of a log copy is
// flipped. This is the issue's end-to-end acceptance path for the
// tamper-evidence stack.

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func buildPassverify(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("builds and drives real binaries; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	bin := filepath.Join(t.TempDir(), "passverify")
	if out, err := exec.Command(goBin, "build", "-o", bin, "passv2/cmd/passverify").CombinedOutput(); err != nil {
		t.Fatalf("building passverify: %v\n%s", err, out)
	}
	return bin
}

func countGenerations(t *testing.T, ckptDir string) int {
	t.Helper()
	ents, err := os.ReadDir(ckptDir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".meta") {
			n++
		}
	}
	return n
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPassverifyAuditProc(t *testing.T) {
	bin := buildPassd(t)
	vbin := buildPassverify(t)
	addr := reservePort(t)
	logDir := filepath.Join(t.TempDir(), "log")
	ckptDir := filepath.Join(t.TempDir(), "ckpt")

	daemon := startReplDaemon(t, bin,
		"-addr", addr, "-logdir", logDir,
		"-checkpoint-dir", ckptDir,
		"-checkpoint-records", "40", "-checkpoint-interval", "150ms",
		"-drain-interval", "25ms",
	)

	c, err := DialOptions(addr, Options{RetryBase: 50 * time.Millisecond, MaxRetries: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	// Ingest continuously in the background; the kill lands mid-stream.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; ; b++ {
			select {
			case <-stop:
				return
			default:
			}
			// Errors are expected once the daemon dies under us.
			if _, err := c.Append(replRecs(b*20, 20)); err != nil {
				return
			}
		}
	}()

	// Wait for at least 3 committed, signed generations, then SIGKILL
	// with appends still in flight.
	deadline := time.Now().Add(30 * time.Second)
	for countGenerations(t, ckptDir) < 3 {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatalf("never reached 3 checkpoint generations (have %d)", countGenerations(t, ckptDir))
		}
		time.Sleep(20 * time.Millisecond)
	}
	daemon.Process.Kill()
	daemon.Wait()
	close(stop)
	wg.Wait()

	pub := filepath.Join(logDir, "keys", "signer.pub")
	if _, err := os.Stat(pub); err != nil {
		t.Fatalf("daemon did not persist its public identity: %v", err)
	}

	// The offline audit must pass on whatever survived the kill: every
	// signed root checked against a from-bytes replay, consistency
	// across generations, inclusion proofs for early records.
	out, err := exec.Command(vbin,
		"-logdir", logDir, "-checkpoint-dir", ckptDir,
		"-pub", pub, "-prove", "0,5,17",
	).CombinedOutput()
	t.Logf("passverify (clean):\n%s", out)
	if err != nil {
		t.Fatalf("audit of a kill-surviving daemon failed: %v", err)
	}
	if !strings.Contains(string(out), "passverify: OK") {
		t.Fatalf("audit did not report OK:\n%s", out)
	}

	// Flip one EARLY byte in a copy of the log — inside the region the
	// oldest signed root covers — and the audit must fail with exit 1.
	tampered := filepath.Join(t.TempDir(), "tampered")
	copyTree(t, logDir, tampered)
	ents, err := os.ReadDir(tampered)
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "log.") {
			seg = filepath.Join(tampered, e.Name())
			break
		}
	}
	if seg == "" {
		t.Fatalf("no log segment in %v", ents)
	}
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	b[40] ^= 0x01
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(vbin,
		"-logdir", tampered, "-checkpoint-dir", ckptDir, "-pub", pub,
	).CombinedOutput()
	t.Logf("passverify (flipped bit):\n%s", out)
	var xerr *exec.ExitError
	if !errors.As(err, &xerr) || xerr.ExitCode() != 1 {
		t.Fatalf("audit of a bit-flipped log: err=%v, want exit status 1", err)
	}
	if !strings.Contains(string(out), "FAILURE") {
		t.Fatalf("failed audit did not report failures:\n%s", out)
	}
}
