// Package pnode defines provenance node identity: pnode numbers, object
// versions, and object references.
//
// A pnode number is a unique ID assigned to an object at creation time. It
// is a handle for the object's provenance, akin to an inode number, but
// never recycled (PASSv2 paper, §5.2). A version distinguishes the states
// an object passes through as cycle breaking freezes it.
package pnode

import (
	"fmt"
	"sync/atomic"
)

// PNode is a pnode number: a unique, never-recycled identifier for a
// provenance-bearing object. The zero value is invalid and means "no
// object".
type PNode uint64

// Invalid is the zero PNode; no allocated object ever has it.
const Invalid PNode = 0

// IsValid reports whether p identifies an allocated object.
func (p PNode) IsValid() bool { return p != Invalid }

// String formats the pnode as the paper's tools print it, e.g. "pn:42".
func (p PNode) String() string { return fmt.Sprintf("pn:%d", uint64(p)) }

// Version numbers an object's state. Versions start at 1 when the object
// is created and increase by one on every freeze. Version 0 means
// "unversioned / any version" in contexts that permit it.
type Version uint32

// String formats the version, e.g. "v3".
func (v Version) String() string { return fmt.Sprintf("v%d", uint32(v)) }

// Ref identifies one version of one object: the (pnode, version) pair
// returned by pass_read and embedded in cross-reference provenance records.
type Ref struct {
	PNode   PNode
	Version Version
}

// IsValid reports whether the reference names an allocated object.
func (r Ref) IsValid() bool { return r.PNode.IsValid() }

// String formats the reference, e.g. "pn:42@v3".
func (r Ref) String() string { return fmt.Sprintf("%s@%s", r.PNode, r.Version) }

// Less orders references by pnode then version, for deterministic output.
func (r Ref) Less(o Ref) bool {
	if r.PNode != o.PNode {
		return r.PNode < o.PNode
	}
	return r.Version < o.Version
}

// Allocator hands out pnode numbers. It is safe for concurrent use. The
// zero value is ready to use and starts numbering at 1.
//
// In PASSv2 each PASS volume allocates pnodes from its own space; to keep
// cross-volume references unambiguous the simulation gives each volume an
// Allocator seeded with a distinct high-bits prefix (see NewPrefixed).
type Allocator struct {
	next atomic.Uint64
}

// NewAllocator returns an allocator whose first pnode is 1.
func NewAllocator() *Allocator { return &Allocator{} }

// prefixShift leaves 48 bits of per-volume pnode space.
const prefixShift = 48

// NewPrefixed returns an allocator whose pnodes carry the given volume
// prefix in their top 16 bits, so pnodes from different volumes never
// collide. Prefix 0 yields plain small integers.
func NewPrefixed(prefix uint16) *Allocator {
	a := &Allocator{}
	a.next.Store(uint64(prefix) << prefixShift)
	return a
}

// Next allocates and returns a fresh pnode number.
func (a *Allocator) Next() PNode {
	return PNode(a.next.Add(1))
}

// SeedPast advances the allocator so every future pnode is strictly
// greater than pn. Restarted daemons use it to resume allocation past
// everything a previous process handed out (pnodes are never recycled,
// §5.2); seeding below the current position is a no-op.
func (a *Allocator) SeedPast(pn PNode) {
	for {
		cur := a.next.Load()
		if cur >= uint64(pn) {
			return
		}
		if a.next.CompareAndSwap(cur, uint64(pn)) {
			return
		}
	}
}

// VolumePrefix extracts the volume prefix embedded in a pnode allocated by
// a NewPrefixed allocator.
func VolumePrefix(p PNode) uint16 {
	return uint16(uint64(p) >> prefixShift)
}
