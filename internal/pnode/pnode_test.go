package pnode

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestInvalidIsZero(t *testing.T) {
	var p PNode
	if p.IsValid() {
		t.Fatal("zero PNode must be invalid")
	}
	if Invalid.IsValid() {
		t.Fatal("Invalid must not be valid")
	}
	if (Ref{}).IsValid() {
		t.Fatal("zero Ref must be invalid")
	}
}

func TestAllocatorStartsAtOne(t *testing.T) {
	a := NewAllocator()
	if got := a.Next(); got != 1 {
		t.Fatalf("first pnode = %d, want 1", got)
	}
	if got := a.Next(); got != 2 {
		t.Fatalf("second pnode = %d, want 2", got)
	}
}

func TestAllocatorNeverRecycles(t *testing.T) {
	a := NewAllocator()
	seen := make(map[PNode]bool)
	for i := 0; i < 10000; i++ {
		p := a.Next()
		if seen[p] {
			t.Fatalf("pnode %v recycled", p)
		}
		if !p.IsValid() {
			t.Fatalf("allocated pnode %v is invalid", p)
		}
		seen[p] = true
	}
}

func TestAllocatorConcurrent(t *testing.T) {
	a := NewAllocator()
	const workers, per = 8, 1000
	var mu sync.Mutex
	seen := make(map[PNode]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]PNode, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, a.Next())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, p := range local {
				if seen[p] {
					t.Errorf("duplicate pnode %v", p)
				}
				seen[p] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Fatalf("allocated %d unique pnodes, want %d", len(seen), workers*per)
	}
}

func TestPrefixedAllocator(t *testing.T) {
	a := NewPrefixed(7)
	p := a.Next()
	if got := VolumePrefix(p); got != 7 {
		t.Fatalf("VolumePrefix = %d, want 7", got)
	}
	b := NewPrefixed(8)
	if VolumePrefix(b.Next()) == VolumePrefix(p) {
		t.Fatal("distinct prefixes must not collide")
	}
}

func TestPrefixedAllocatorsDisjoint(t *testing.T) {
	a, b := NewPrefixed(1), NewPrefixed(2)
	seen := make(map[PNode]bool)
	for i := 0; i < 1000; i++ {
		pa, pb := a.Next(), b.Next()
		if seen[pa] || seen[pb] || pa == pb {
			t.Fatalf("collision between prefixed allocators: %v %v", pa, pb)
		}
		seen[pa], seen[pb] = true, true
	}
}

func TestStringFormats(t *testing.T) {
	if got := PNode(42).String(); got != "pn:42" {
		t.Errorf("PNode.String = %q", got)
	}
	if got := Version(3).String(); got != "v3" {
		t.Errorf("Version.String = %q", got)
	}
	r := Ref{PNode: 42, Version: 3}
	if got := r.String(); got != "pn:42@v3" {
		t.Errorf("Ref.String = %q", got)
	}
}

func TestRefLessIsStrictWeakOrder(t *testing.T) {
	// Property: Less is irreflexive and asymmetric, and ordering by
	// (pnode, version) is total on distinct refs.
	f := func(p1, p2 uint64, v1, v2 uint32) bool {
		a := Ref{PNode(p1), Version(v1)}
		b := Ref{PNode(p2), Version(v2)}
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVolumePrefixRoundTrip(t *testing.T) {
	f := func(prefix uint16) bool {
		a := NewPrefixed(prefix)
		return VolumePrefix(a.Next()) == prefix
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
