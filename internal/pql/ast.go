package pql

// AST node types for the PQL dialect.

// Query is a parsed select/from/where statement.
type Query struct {
	Select   []SelectItem
	Bindings []Binding
	Where    Expr // nil if absent
}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// Binding binds a path expression to a variable.
type Binding struct {
	Path Path
	Var  string
}

// Path is a root plus a sequence of edge steps.
type Path struct {
	// Root: either a class root ("Provenance.file") or a variable.
	Class   string // "" unless class-rooted; "obj" means every object
	RootVar string // "" unless variable-rooted
	Steps   []Step
}

// Closure kinds for a step.
type Closure int

const (
	ClosureNone Closure = iota // exactly one step
	ClosureStar                // zero or more
	ClosurePlus                // one or more
	ClosureOpt                 // zero or one
)

// Step follows one edge kind, possibly reversed, possibly closed over.
type Step struct {
	Edge    string // attribute name, e.g. "input"
	Reverse bool   // "~": traverse against the edge direction
	Closure Closure
}

// Expr is a boolean/value expression.
type Expr interface{ isExpr() }

// BinaryExpr applies a comparison or boolean operator.
type BinaryExpr struct {
	Op   string // "and", "or", "=", "!=", "<", "<=", ">", ">=", "like"
	L, R Expr
}

// NotExpr negates.
type NotExpr struct{ E Expr }

// VarExpr references a bound variable.
type VarExpr struct{ Name string }

// AttrExpr accesses an attribute of a bound variable (Atlas.name).
type AttrExpr struct {
	Var  string
	Attr string
}

// StringLit / NumberLit / BoolLit are literals.
type StringLit struct{ V string }
type NumberLit struct{ V int64 }
type BoolLit struct{ V bool }

// CountExpr aggregates the distinct values of an expression over all
// matching tuples.
type CountExpr struct{ E Expr }

// ExistsExpr is a subquery predicate: true if the path, evaluated from the
// current tuple, matches anything.
type ExistsExpr struct{ Path Path }

func (*BinaryExpr) isExpr() {}
func (*NotExpr) isExpr()    {}
func (*VarExpr) isExpr()    {}
func (*AttrExpr) isExpr()   {}
func (*StringLit) isExpr()  {}
func (*NumberLit) isExpr()  {}
func (*BoolLit) isExpr()    {}
func (*CountExpr) isExpr()  {}
func (*ExistsExpr) isExpr() {}
