package pql

import (
	"fmt"
	"math/rand"
	"testing"

	"passv2/internal/graph"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/waldo"
)

// equivalenceQueries is the fixed battery run over every random graph:
// pushdown-eligible shapes (name/type equalities), pushdown-ineligible
// shapes (OR, negation, LIKE, cross-binding predicates), dependent
// bindings, closures in both directions, exists, count, and projections.
var equivalenceQueries = []string{
	`select A from Provenance.file as F F.input* as A where F.name = "n1"`,
	`select F from Provenance.obj as F where F.type = "PROC"`,
	`select F from Provenance.file as F where F.name = "n2" and F.version = 1`,
	`select F from Provenance.file as F where F.name = "n1" or F.name = "n2"`,
	`select F from Provenance.file as F where not (F.name = "n1")`,
	`select A from Provenance.file as F F.input+ as A where A.name = "n3" and F.name != "n0"`,
	`select D from Provenance.file as F F.input~* as D where F.name = "n1"`,
	`select F from Provenance.proc as F where exists(F.input)`,
	`select count(A) from Provenance.obj as F F.input* as A where F.type = "FILE"`,
	`select F.name from Provenance.file as F where F.name like "n*"`,
	`select A, B from Provenance.file as F F.input as A A.input* as B where F.name = "n1"`,
	`select F.name, F.version from Provenance.proc as F`,
	`select X from Provenance.file as F F.input? as X where X.version <= 2`,
	`select A from Provenance.dataset.input* as A where A.name = "n4"`,
	`select F from Provenance.file as F where "n2" = F.name`,
	`select X from Provenance.obj as X where X.type = "FILE" and exists(X.input~)`,
	`select count(F) from Provenance.file as F where true`,
}

// randomSources builds one or two provenance databases with colliding
// names, multi-version pnodes, renames, and random (possibly cyclic) INPUT
// edges — the adversarial inputs for planner/evaluator equivalence.
func randomSources(rng *rand.Rand) []*waldo.DB {
	nDBs := 1 + rng.Intn(2)
	dbs := make([]*waldo.DB, nDBs)
	for i := range dbs {
		dbs[i] = waldo.NewDB()
	}
	pick := func() *waldo.DB { return dbs[rng.Intn(nDBs)] }
	types := []string{record.TypeFile, record.TypeProc, record.TypeDataset}

	n := 8 + rng.Intn(16)
	maxVer := make([]uint32, n+1)
	for pn := 1; pn <= n; pn++ {
		maxVer[pn] = 1 + uint32(rng.Intn(3))
		r := pnode.Ref{PNode: pnode.PNode(pn), Version: 1}
		pick().Apply(record.New(r, record.AttrType, record.StringVal(types[rng.Intn(len(types))])))
		pick().Apply(record.New(r, record.AttrName, record.StringVal(fmt.Sprintf("n%d", rng.Intn(8)))))
		if maxVer[pn] > 1 && rng.Intn(3) == 0 { // rename at a later version
			r2 := pnode.Ref{PNode: pnode.PNode(pn), Version: pnode.Version(maxVer[pn])}
			pick().Apply(record.New(r2, record.AttrName, record.StringVal(fmt.Sprintf("n%d", rng.Intn(8)))))
		}
		if rng.Intn(4) == 0 { // a second TYPE for some objects
			pick().Apply(record.New(r, record.AttrType, record.StringVal(types[rng.Intn(len(types))])))
		}
	}
	edges := 2 * n
	for e := 0; e < edges; e++ {
		sub := pnode.Ref{PNode: pnode.PNode(1 + rng.Intn(n)), Version: pnode.Version(1 + rng.Intn(3))}
		dep := pnode.Ref{PNode: pnode.PNode(1 + rng.Intn(n)), Version: pnode.Version(1 + rng.Intn(3))}
		if sub == dep {
			continue
		}
		pick().Apply(record.Input(sub, dep))
	}
	return dbs
}

// TestPlannedMatchesNaiveOnRandomGraphs is the planner equivalence suite:
// over many random multi-source graphs, the planned executor and the naive
// cross-product evaluator must produce byte-identical result tables for
// every query shape in the battery.
func TestPlannedMatchesNaiveOnRandomGraphs(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dbs := randomSources(rng)
		srcs := make([]graph.Source, len(dbs))
		for i, db := range dbs {
			srcs[i] = db
		}
		g := graph.New(srcs...)
		for _, src := range equivalenceQueries {
			q, err := Parse(src)
			if err != nil {
				t.Fatalf("seed %d: parse %q: %v", seed, src, err)
			}
			naive, nerr := EvalNaive(g, q)
			planned, perr := Eval(g, q)
			if nerr != nil || perr != nil {
				t.Fatalf("seed %d: %q: naive err=%v planned err=%v", seed, src, nerr, perr)
			}
			if naive.Format() != planned.Format() {
				t.Fatalf("seed %d: %q:\nnaive:\n%s\nplanned:\n%s", seed, src, naive.Format(), planned.Format())
			}
		}
	}
}

// TestPlannedMatchesNaiveOnPaperGraph runs the battery over the fixed
// paper example too, where expected results are human-checkable.
func TestPlannedMatchesNaiveOnPaperGraph(t *testing.T) {
	g := buildGraph()
	for _, src := range equivalenceQueries {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		naive, nerr := EvalNaive(g, q)
		planned, perr := Eval(g, q)
		if nerr != nil || perr != nil {
			t.Fatalf("%q: naive err=%v planned err=%v", src, nerr, perr)
		}
		if naive.Format() != planned.Format() {
			t.Fatalf("%q:\nnaive:\n%s\nplanned:\n%s", src, naive.Format(), planned.Format())
		}
	}
}

// TestPlanExecuteReusable pins that one Plan can be executed repeatedly
// (and over different graphs) without state leaking between runs.
func TestPlanExecuteReusable(t *testing.T) {
	q, err := Parse(`select A from Provenance.file as F F.input* as A where F.name = "atlas-x.gif"`)
	if err != nil {
		t.Fatal(err)
	}
	p := PlanQuery(q)
	g := buildGraph()
	first, err := p.Execute(g)
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Execute(g)
	if err != nil {
		t.Fatal(err)
	}
	if first.Format() != second.Format() {
		t.Fatal("re-executed plan diverged")
	}
	empty, err := p.Execute(graph.New(waldo.NewDB()))
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Rows) != 0 {
		t.Fatalf("empty graph rows = %v", empty.Rows)
	}
}
