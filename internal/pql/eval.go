package pql

import (
	"fmt"
	"path"
	"sort"
	"strings"

	"passv2/internal/graph"
	"passv2/internal/pnode"
	"passv2/internal/record"
)

// ValueKind tags a query result value.
type ValueKind int

const (
	ValNull ValueKind = iota
	ValRef
	ValString
	ValInt
	ValBool
)

// Value is one cell of a query result.
type Value struct {
	Kind ValueKind
	Ref  pnode.Ref
	Name string // display name for refs
	Str  string
	Int  int64
	Bool bool
}

// String renders the value the way the query shell prints it.
func (v Value) String() string {
	switch v.Kind {
	case ValRef:
		if v.Name != "" {
			return fmt.Sprintf("%s (%s)", v.Name, v.Ref)
		}
		return v.Ref.String()
	case ValString:
		return v.Str
	case ValInt:
		return fmt.Sprintf("%d", v.Int)
	case ValBool:
		return fmt.Sprintf("%t", v.Bool)
	default:
		return "null"
	}
}

// Result is a query result set.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// Run parses and evaluates a query over g (through the planner; see
// plan.go).
func Run(g *graph.Graph, src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Eval(g, q)
}

// evaluator carries the expression-evaluation state shared by the planned
// executor (exec.go) and the naive reference evaluator. With memo set,
// INPUT-edge traversals run through a cache — per-query (graph.Memo) or
// shared across queries on a snapshot (graph.SharedMemo).
type evaluator struct {
	g    *graph.Graph
	memo graph.Traversal
}

type tuple map[string]pnode.Ref

// EvalNaive evaluates a parsed query by materializing the full
// cross-product of the FROM bindings and then filtering — the pre-planner
// evaluator, retained verbatim as the reference implementation for the
// planner equivalence suite and the BenchmarkPQLQuery baseline.
func EvalNaive(g *graph.Graph, q *Query) (*Result, error) {
	ev := &evaluator{g: g}
	tuples, err := ev.bind(q.Bindings)
	if err != nil {
		return nil, err
	}
	if q.Where != nil {
		var kept []tuple
		for _, tu := range tuples {
			ok, err := ev.evalBool(q.Where, tu)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, tu)
			}
		}
		tuples = kept
	}
	return ev.project(q.Select, tuples)
}

// bind produces the tuple set of the FROM clause.
func (ev *evaluator) bind(bindings []Binding) ([]tuple, error) {
	tuples := []tuple{{}}
	for _, b := range bindings {
		var next []tuple
		for _, tu := range tuples {
			refs, err := ev.pathRefs(b.Path, tu)
			if err != nil {
				return nil, err
			}
			for _, r := range refs {
				nt := make(tuple, len(tu)+1)
				for k, v := range tu {
					nt[k] = v
				}
				nt[b.Var] = r
				next = append(next, nt)
			}
		}
		tuples = next
	}
	return tuples, nil
}

// pathRefs evaluates a path expression in the context of a tuple.
func (ev *evaluator) pathRefs(p Path, tu tuple) ([]pnode.Ref, error) {
	var frontier []pnode.Ref
	switch {
	case p.Class != "":
		frontier = ev.classRefs(p.Class)
	case p.RootVar != "":
		r, ok := tu[p.RootVar]
		if !ok {
			return nil, fmt.Errorf("pql: unbound variable %q", p.RootVar)
		}
		frontier = []pnode.Ref{r}
	}
	for _, step := range p.Steps {
		var err error
		frontier, err = ev.applyStep(frontier, step)
		if err != nil {
			return nil, err
		}
	}
	return frontier, nil
}

// classType maps Provenance.<class> to the record TYPE it enumerates; all
// reports the classes that mean "every object".
func classType(class string) (typ string, all bool) {
	switch class {
	case "obj", "object", "any":
		return "", true
	case "file":
		return record.TypeFile, false
	case "proc", "process":
		return record.TypeProc, false
	case "pipe":
		return record.TypePipe, false
	case "session":
		return record.TypeSession, false
	case "operator":
		return record.TypeOperator, false
	case "function":
		return record.TypeFunction, false
	case "invocation":
		return record.TypeInvoke, false
	case "dataset":
		return record.TypeDataset, false
	case "document":
		return record.TypeDocument, false
	default:
		return strings.ToUpper(class), false
	}
}

// classRefs enumerates the roots of Provenance.<class> the naive way:
// typed pnodes, then every version of each.
func (ev *evaluator) classRefs(class string) []pnode.Ref {
	typ, all := classType(class)
	if all {
		return ev.g.AllRefs()
	}
	var out []pnode.Ref
	for _, pn := range ev.g.ByType(typ) {
		for _, v := range ev.g.Versions(pn) {
			out = append(out, pnode.Ref{PNode: pn, Version: v})
		}
	}
	return out
}

// applyStep follows one edge step (with closure) from every frontier ref.
func (ev *evaluator) applyStep(frontier []pnode.Ref, s Step) ([]pnode.Ref, error) {
	follow, err := ev.edgeFunc(s)
	if err != nil {
		return nil, err
	}
	seen := make(map[pnode.Ref]bool)
	var out []pnode.Ref
	add := func(r pnode.Ref) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, start := range frontier {
		switch s.Closure {
		case ClosureNone:
			for _, r := range follow(start) {
				add(r)
			}
		case ClosureOpt:
			add(start)
			for _, r := range follow(start) {
				add(r)
			}
		case ClosureStar, ClosurePlus:
			if s.Closure == ClosureStar {
				add(start)
			}
			if ev.memo != nil && s.Edge == "input" {
				for _, r := range ev.memo.Closure(start, s.Reverse) {
					add(r)
				}
				continue
			}
			visited := map[pnode.Ref]bool{start: true}
			queue := follow(start)
			for len(queue) > 0 {
				n := queue[0]
				queue = queue[1:]
				if visited[n] {
					continue
				}
				visited[n] = true
				add(n)
				queue = append(queue, follow(n)...)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

func (ev *evaluator) edgeFunc(s Step) (func(pnode.Ref) []pnode.Ref, error) {
	if s.Edge == "input" {
		if ev.memo != nil {
			if s.Reverse {
				return ev.memo.Dependents, nil
			}
			return ev.memo.Inputs, nil
		}
		if s.Reverse {
			return ev.g.Dependents, nil
		}
		return ev.g.Inputs, nil
	}
	if s.Reverse {
		return nil, fmt.Errorf("pql: reverse traversal of %q is not supported (only input~)", s.Edge)
	}
	attr := record.Attr(strings.ToUpper(s.Edge))
	return func(r pnode.Ref) []pnode.Ref {
		var out []pnode.Ref
		for _, v := range ev.g.AttrValuesAnyVersion(r, attr) {
			if ref, ok := v.AsRef(); ok {
				out = append(out, ref)
			}
		}
		return out
	}, nil
}

// --- expression evaluation ---

func (ev *evaluator) evalBool(e Expr, tu tuple) (bool, error) {
	v, err := ev.eval(e, tu)
	if err != nil {
		return false, err
	}
	return v.Kind == ValBool && v.Bool, nil
}

func (ev *evaluator) eval(e Expr, tu tuple) (Value, error) {
	switch x := e.(type) {
	case *StringLit:
		return Value{Kind: ValString, Str: x.V}, nil
	case *NumberLit:
		return Value{Kind: ValInt, Int: x.V}, nil
	case *BoolLit:
		return Value{Kind: ValBool, Bool: x.V}, nil
	case *VarExpr:
		r, ok := tu[x.Name]
		if !ok {
			return Value{}, fmt.Errorf("pql: unbound variable %q", x.Name)
		}
		name, _ := ev.g.NameOf(r.PNode)
		return Value{Kind: ValRef, Ref: r, Name: name}, nil
	case *AttrExpr:
		r, ok := tu[x.Var]
		if !ok {
			return Value{}, fmt.Errorf("pql: unbound variable %q", x.Var)
		}
		return ev.attrValue(r, x.Attr), nil
	case *NotExpr:
		b, err := ev.evalBool(x.E, tu)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: ValBool, Bool: !b}, nil
	case *ExistsExpr:
		refs, err := ev.pathRefs(x.Path, tu)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: ValBool, Bool: len(refs) > 0}, nil
	case *BinaryExpr:
		return ev.evalBinary(x, tu)
	case *CountExpr:
		return Value{}, fmt.Errorf("pql: count() is only allowed in the select list")
	default:
		return Value{}, fmt.Errorf("pql: unhandled expression %T", e)
	}
}

func (ev *evaluator) attrValue(r pnode.Ref, attr string) Value {
	switch attr {
	case "version":
		return Value{Kind: ValInt, Int: int64(r.Version)}
	case "pnode":
		return Value{Kind: ValInt, Int: int64(uint64(r.PNode))}
	}
	vals := ev.g.AttrValuesAnyVersion(r, record.Attr(strings.ToUpper(attr)))
	if len(vals) == 0 {
		return Value{Kind: ValNull}
	}
	return recordValue(vals[0], ev)
}

func recordValue(v record.Value, ev *evaluator) Value {
	if s, ok := v.AsString(); ok {
		return Value{Kind: ValString, Str: s}
	}
	if i, ok := v.AsInt(); ok {
		return Value{Kind: ValInt, Int: i}
	}
	if b, ok := v.AsBool(); ok {
		return Value{Kind: ValBool, Bool: b}
	}
	if r, ok := v.AsRef(); ok {
		name, _ := ev.g.NameOf(r.PNode)
		return Value{Kind: ValRef, Ref: r, Name: name}
	}
	return Value{Kind: ValNull}
}

func (ev *evaluator) evalBinary(x *BinaryExpr, tu tuple) (Value, error) {
	switch x.Op {
	case "and":
		l, err := ev.evalBool(x.L, tu)
		if err != nil || !l {
			return Value{Kind: ValBool, Bool: false}, err
		}
		r, err := ev.evalBool(x.R, tu)
		return Value{Kind: ValBool, Bool: r}, err
	case "or":
		l, err := ev.evalBool(x.L, tu)
		if err != nil {
			return Value{}, err
		}
		if l {
			return Value{Kind: ValBool, Bool: true}, nil
		}
		r, err := ev.evalBool(x.R, tu)
		return Value{Kind: ValBool, Bool: r}, err
	}
	l, err := ev.eval(x.L, tu)
	if err != nil {
		return Value{}, err
	}
	r, err := ev.eval(x.R, tu)
	if err != nil {
		return Value{}, err
	}
	return compare(x.Op, l, r)
}

func compare(op string, l, r Value) (Value, error) {
	if l.Kind == ValNull || r.Kind == ValNull {
		// Comparisons against missing attributes are false, except that
		// null != x holds when x exists.
		res := op == "!=" && (l.Kind == ValNull) != (r.Kind == ValNull)
		return Value{Kind: ValBool, Bool: res}, nil
	}
	if op == "like" {
		if l.Kind != ValString || r.Kind != ValString {
			return Value{}, fmt.Errorf("pql: like requires strings")
		}
		ok, err := path.Match(r.Str, l.Str)
		if err != nil {
			return Value{}, fmt.Errorf("pql: bad like pattern %q: %v", r.Str, err)
		}
		// Globs anchored like Lorel: also allow substring match when the
		// pattern has no metacharacters.
		if !ok && !strings.ContainsAny(r.Str, "*?[") {
			ok = strings.Contains(l.Str, r.Str)
		}
		return Value{Kind: ValBool, Bool: ok}, nil
	}
	cmp, err := order(l, r)
	if err != nil {
		return Value{}, err
	}
	var res bool
	switch op {
	case "=":
		res = cmp == 0
	case "!=":
		res = cmp != 0
	case "<":
		res = cmp < 0
	case "<=":
		res = cmp <= 0
	case ">":
		res = cmp > 0
	case ">=":
		res = cmp >= 0
	default:
		return Value{}, fmt.Errorf("pql: unknown operator %q", op)
	}
	return Value{Kind: ValBool, Bool: res}, nil
}

func order(l, r Value) (int, error) {
	if l.Kind == ValRef && r.Kind == ValRef {
		switch {
		case l.Ref == r.Ref:
			return 0, nil
		case l.Ref.Less(r.Ref):
			return -1, nil
		default:
			return 1, nil
		}
	}
	if l.Kind == ValInt && r.Kind == ValInt {
		switch {
		case l.Int == r.Int:
			return 0, nil
		case l.Int < r.Int:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if l.Kind == ValString && r.Kind == ValString {
		return strings.Compare(l.Str, r.Str), nil
	}
	if l.Kind == ValBool && r.Kind == ValBool {
		lb, rb := 0, 0
		if l.Bool {
			lb = 1
		}
		if r.Bool {
			rb = 1
		}
		return lb - rb, nil
	}
	return 0, fmt.Errorf("pql: cannot compare %v with %v", l, r)
}

// --- projection ---

func (ev *evaluator) project(items []SelectItem, tuples []tuple) (*Result, error) {
	res := &Result{}
	aggregate := false
	for _, it := range items {
		if _, ok := it.Expr.(*CountExpr); ok {
			aggregate = true
		}
		res.Columns = append(res.Columns, columnName(it))
	}
	if aggregate {
		row := make([]Value, len(items))
		for i, it := range items {
			c, ok := it.Expr.(*CountExpr)
			if !ok {
				return nil, fmt.Errorf("pql: cannot mix aggregates and plain values in select")
			}
			distinct := make(map[string]bool)
			for _, tu := range tuples {
				v, err := ev.eval(c.E, tu)
				if err != nil {
					return nil, err
				}
				if v.Kind != ValNull {
					distinct[v.String()] = true
				}
			}
			row[i] = Value{Kind: ValInt, Int: int64(len(distinct))}
		}
		res.Rows = append(res.Rows, row)
		return res, nil
	}
	seen := make(map[string]bool)
	for _, tu := range tuples {
		row := make([]Value, len(items))
		for i, it := range items {
			v, err := ev.eval(it.Expr, tu)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		key := renderRow(row)
		if !seen[key] {
			seen[key] = true
			res.Rows = append(res.Rows, row)
		}
	}
	sort.Slice(res.Rows, func(i, j int) bool {
		return renderRow(res.Rows[i]) < renderRow(res.Rows[j])
	})
	return res, nil
}

func columnName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch e := it.Expr.(type) {
	case *VarExpr:
		return e.Name
	case *AttrExpr:
		return e.Var + "." + e.Attr
	case *CountExpr:
		return "count"
	default:
		return "expr"
	}
}

func renderRow(row []Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.String()
	}
	return strings.Join(parts, "\x00")
}

// Format renders a result as an aligned text table (the query shell uses
// it).
func (r *Result) Format() string {
	if len(r.Rows) == 0 {
		return "(no results)\n"
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	rendered := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rendered[i] = make([]string, len(row))
		for j, v := range row {
			rendered[i][j] = v.String()
			if len(rendered[i][j]) > widths[j] {
				widths[j] = len(rendered[i][j])
			}
		}
	}
	var sb strings.Builder
	for i, c := range r.Columns {
		fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
	}
	sb.WriteByte('\n')
	for i := range r.Columns {
		sb.WriteString(strings.Repeat("-", widths[i]))
		sb.WriteString("  ")
	}
	sb.WriteByte('\n')
	for _, row := range rendered {
		for j, cell := range row {
			fmt.Fprintf(&sb, "%-*s  ", widths[j], cell)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
