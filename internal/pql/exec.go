package pql

import (
	"fmt"

	"passv2/internal/graph"
	"passv2/internal/pnode"
)

// Eval plans and executes a parsed query over g. For every query that
// evaluates without error the result set is identical to EvalNaive's (the
// equivalence suite pins this; see plan.go for the error caveat) — only
// the work differs: sargable root predicates become index seeks, dependent
// bindings expand lazily per surviving tuple, and closure steps share one
// per-query traversal memo.
func Eval(g *graph.Graph, q *Query) (*Result, error) {
	return PlanQuery(q).Execute(g)
}

// Execute runs the plan over g. A Plan is immutable and may be executed
// concurrently; each execution gets its own traversal memo.
func (p *Plan) Execute(g *graph.Graph) (*Result, error) {
	ev := &evaluator{g: g, memo: g.NewMemo()}
	ex := &executor{p: p, ev: ev, roots: make([][]pnode.Ref, len(p.binds))}
	tu := make(tuple, len(p.binds))
	if err := ex.walk(0, tu); err != nil {
		return nil, err
	}
	return ev.project(p.q.Select, ex.kept)
}

// executor is the state of one plan execution.
type executor struct {
	p     *Plan
	ev    *evaluator
	roots [][]pnode.Ref // cached tuple-independent root sets, per binding
	kept  []tuple
}

// walk expands binding i for the partial tuple tu, applies the conjuncts
// that become decidable at i, and recurses only for tuples that survive —
// the lazy replacement for cross-product-then-filter.
func (ex *executor) walk(i int, tu tuple) error {
	if i == len(ex.p.binds) {
		for _, f := range ex.p.residual {
			ok, err := ex.ev.evalBool(f, tu)
			if err != nil || !ok {
				return err
			}
		}
		kept := make(tuple, len(tu))
		for k, v := range tu {
			kept[k] = v
		}
		ex.kept = append(ex.kept, kept)
		return nil
	}
	bp := &ex.p.binds[i]
	refs, err := ex.bindRefs(i, bp, tu)
	if err != nil {
		return err
	}
	prev, had := tu[bp.b.Var]
	defer func() {
		if had {
			tu[bp.b.Var] = prev
		} else {
			delete(tu, bp.b.Var)
		}
	}()
	for _, r := range refs {
		tu[bp.b.Var] = r
		survives := true
		for _, f := range bp.filters {
			ok, err := ex.ev.evalBool(f, tu)
			if err != nil {
				return err
			}
			if !ok {
				survives = false
				break
			}
		}
		if !survives {
			continue
		}
		if err := ex.walk(i+1, tu); err != nil {
			return err
		}
	}
	return nil
}

// bindRefs enumerates the candidate refs of binding i under tu, through the
// planned access path. Class-rooted bindings are tuple-independent, so
// their (root enumeration + path steps) result is computed once per
// execution and reused across outer tuples.
func (ex *executor) bindRefs(i int, bp *bindPlan, tu tuple) ([]pnode.Ref, error) {
	if bp.access != accessVar {
		if cached := ex.roots[i]; cached != nil {
			return cached, nil
		}
	}
	var frontier []pnode.Ref
	switch bp.access {
	case accessVar:
		r, ok := tu[bp.b.Path.RootVar]
		if !ok {
			return nil, fmt.Errorf("pql: unbound variable %q", bp.b.Path.RootVar)
		}
		frontier = []pnode.Ref{r}
	case accessAllRefs:
		frontier = ex.ev.g.AllRefs()
	case accessTypeScan:
		frontier = ex.ev.g.RefsByType(bp.typ)
	case accessNameSeek:
		frontier = ex.ev.g.RefsByNameType(bp.name, bp.typ)
	}
	for _, step := range bp.b.Path.Steps {
		var err error
		frontier, err = ex.ev.applyStep(frontier, step)
		if err != nil {
			return nil, err
		}
	}
	if bp.access != accessVar {
		if frontier == nil {
			frontier = []pnode.Ref{} // distinguish "computed, empty" from "not yet"
		}
		ex.roots[i] = frontier
	}
	return frontier, nil
}
