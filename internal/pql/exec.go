package pql

import (
	"context"
	"fmt"

	"passv2/internal/graph"
	"passv2/internal/pnode"
)

// Eval plans and executes a parsed query over g. For every query that
// evaluates without error the result set is identical to EvalNaive's (the
// equivalence suite pins this; see plan.go for the error caveat) — only
// the work differs: sargable root predicates become index seeks, dependent
// bindings expand lazily per surviving tuple, and closure steps share one
// per-query traversal memo.
func Eval(g *graph.Graph, q *Query) (*Result, error) {
	return PlanQuery(q).Execute(g)
}

// Execute runs the plan over g. A Plan is immutable and may be executed
// concurrently; each execution gets its own traversal memo.
func (p *Plan) Execute(g *graph.Graph) (*Result, error) {
	return p.ExecuteContext(context.Background(), g)
}

// ExecuteContext is Execute with a deadline/cancellation context — the
// per-query budget the passd serving layer enforces. The executor polls the
// context between tuple expansions (every deadlineStride tuples), so
// cancellation is prompt for the combinatorial part of a query; a single
// huge root enumeration or closure expansion is not interrupted mid-call.
func (p *Plan) ExecuteContext(ctx context.Context, g *graph.Graph) (*Result, error) {
	return p.ExecuteWith(ctx, g, nil)
}

// ExecuteWith is ExecuteContext with a caller-provided traversal cache —
// normally a graph.SharedMemo pinned to the same snapshot as g, so closure
// work is shared across queries (the passd serving layer's amortization).
// A nil tr gets a fresh per-query memo. The caller owns the soundness
// contract: a shared cache must only outlive one query if g's sources are
// immutable for its whole lifetime.
func (p *Plan) ExecuteWith(ctx context.Context, g *graph.Graph, tr graph.Traversal) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("pql: %w", err)
	}
	if tr == nil {
		tr = g.NewMemo()
	}
	ev := &evaluator{g: g, memo: tr}
	ex := &executor{p: p, ev: ev, ctx: ctx, roots: make([][]pnode.Ref, len(p.binds))}
	tu := make(tuple, len(p.binds))
	if err := ex.walk(0, tu); err != nil {
		return nil, err
	}
	return ev.project(p.q.Select, ex.kept)
}

// deadlineStride is how many tuple expansions the executor runs between
// context polls: large enough to keep the poll off the per-tuple fast path,
// small enough that deadlines land within microseconds on real queries.
const deadlineStride = 256

// executor is the state of one plan execution.
type executor struct {
	p     *Plan
	ev    *evaluator
	ctx   context.Context
	tick  uint          // tuple expansions since the last context poll
	roots [][]pnode.Ref // cached tuple-independent root sets, per binding
	kept  []tuple
}

// walk expands binding i for the partial tuple tu, applies the conjuncts
// that become decidable at i, and recurses only for tuples that survive —
// the lazy replacement for cross-product-then-filter.
func (ex *executor) walk(i int, tu tuple) error {
	if ex.tick++; ex.tick%deadlineStride == 0 {
		if err := ex.ctx.Err(); err != nil {
			return fmt.Errorf("pql: %w", err)
		}
	}
	if i == len(ex.p.binds) {
		for _, f := range ex.p.residual {
			ok, err := ex.ev.evalBool(f, tu)
			if err != nil || !ok {
				return err
			}
		}
		kept := make(tuple, len(tu))
		for k, v := range tu {
			kept[k] = v
		}
		ex.kept = append(ex.kept, kept)
		return nil
	}
	bp := &ex.p.binds[i]
	refs, err := ex.bindRefs(i, bp, tu)
	if err != nil {
		return err
	}
	prev, had := tu[bp.b.Var]
	defer func() {
		if had {
			tu[bp.b.Var] = prev
		} else {
			delete(tu, bp.b.Var)
		}
	}()
	for _, r := range refs {
		tu[bp.b.Var] = r
		survives := true
		for _, f := range bp.filters {
			ok, err := ex.ev.evalBool(f, tu)
			if err != nil {
				return err
			}
			if !ok {
				survives = false
				break
			}
		}
		if !survives {
			continue
		}
		if err := ex.walk(i+1, tu); err != nil {
			return err
		}
	}
	return nil
}

// bindRefs enumerates the candidate refs of binding i under tu, through the
// planned access path. Class-rooted bindings are tuple-independent, so
// their (root enumeration + path steps) result is computed once per
// execution and reused across outer tuples.
func (ex *executor) bindRefs(i int, bp *bindPlan, tu tuple) ([]pnode.Ref, error) {
	if bp.access != accessVar {
		if cached := ex.roots[i]; cached != nil {
			return cached, nil
		}
	}
	var frontier []pnode.Ref
	switch bp.access {
	case accessVar:
		r, ok := tu[bp.b.Path.RootVar]
		if !ok {
			return nil, fmt.Errorf("pql: unbound variable %q", bp.b.Path.RootVar)
		}
		frontier = []pnode.Ref{r}
	case accessAllRefs:
		frontier = ex.ev.g.AllRefs()
	case accessTypeScan:
		frontier = ex.ev.g.RefsByType(bp.typ)
	case accessNameSeek:
		frontier = ex.ev.g.RefsByNameType(bp.name, bp.typ)
	}
	for _, step := range bp.b.Path.Steps {
		var err error
		frontier, err = ex.ev.applyStep(frontier, step)
		if err != nil {
			return nil, err
		}
	}
	if bp.access != accessVar {
		if frontier == nil {
			frontier = []pnode.Ref{} // distinguish "computed, empty" from "not yet"
		}
		ex.roots[i] = frontier
	}
	return frontier, nil
}
