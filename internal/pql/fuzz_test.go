package pql

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser mutated and random queries; every
// input must return cleanly (parse or error, never panic). The paper
// complains that Lorel's formal grammar was ambiguous with ill-defined
// corner cases — PQL must at least fail predictably.
func TestParserNeverPanics(t *testing.T) {
	seedQueries := []string{
		`select A from Provenance.file as F F.input* as A where F.name = "x"`,
		`select count(X) from Provenance.obj as X`,
		`select F.name as n, F.version as v from Provenance.file as F`,
		`select X from Provenance.proc as P P.input~+ as X where exists(P.input)`,
		`select A from F.input? as A where not (A.name like "*.gif") and 1 < 2`,
	}
	tokens := []string{
		"select", "from", "where", "as", "and", "or", "not", "like",
		"exists", "count", "Provenance", ".", ",", "*", "+", "?", "~",
		"(", ")", "=", "!=", "<", "<=", ">", ">=", "input", "name",
		`"str"`, "'s'", "42", "-7", "F", "X", "true", "false", "", " ",
	}
	rng := rand.New(rand.NewSource(99))
	try := func(q string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", q, r)
			}
		}()
		Parse(q)
	}
	// Mutations of valid queries: deletions, swaps, truncations.
	for _, q := range seedQueries {
		try(q)
		for i := 0; i < 200; i++ {
			b := []byte(q)
			switch rng.Intn(3) {
			case 0: // delete a span
				if len(b) > 2 {
					s := rng.Intn(len(b) - 1)
					e := s + rng.Intn(len(b)-s)
					b = append(b[:s], b[e:]...)
				}
			case 1: // flip a byte
				if len(b) > 0 {
					b[rng.Intn(len(b))] = byte(rng.Intn(128))
				}
			case 2: // truncate
				b = b[:rng.Intn(len(b)+1)]
			}
			try(string(b))
		}
	}
	// Random token soup.
	for i := 0; i < 2000; i++ {
		n := rng.Intn(20)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(tokens[rng.Intn(len(tokens))])
			sb.WriteByte(' ')
		}
		try(sb.String())
	}
	// Raw bytes.
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(64))
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		try(string(b))
	}
}

// TestEvalNeverPanicsOnValidParses runs every successfully parsed mutation
// against a graph; evaluation must return cleanly too.
func TestEvalNeverPanicsOnValidParses(t *testing.T) {
	g := buildGraph()
	rng := rand.New(rand.NewSource(7))
	base := `select A from Provenance.file as F F.input* as A where F.name = "atlas-x.gif"`
	for i := 0; i < 500; i++ {
		b := []byte(base)
		if len(b) > 2 {
			s := rng.Intn(len(b) - 1)
			e := s + rng.Intn(len(b)-s)
			b = append(b[:s], b[e:]...)
		}
		q, err := Parse(string(b))
		if err != nil {
			continue
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("eval panic on %q: %v", b, r)
				}
			}()
			Eval(g, q)
		}()
	}
}
