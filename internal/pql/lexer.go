// Package pql implements PQL ("pickle"), the Path Query Language of PASSv2
// (§5.7). PQL derives from Lorel, the query language of Stanford's Lore
// semistructured database, adapted per the paper's requirements: paths
// through graphs as the basic model, paths as first-class objects, path
// matching by closure over graph edges, traversal in both directions,
// boolean values, sub-queries and aggregation.
//
// The implemented dialect:
//
//	select <items> from <bindings> where <condition>
//
//	items     := item ("," item)*
//	item      := expr ("as" IDENT)?
//	bindings  := binding ((",")? binding)*
//	binding   := path "as" IDENT
//	path      := ("Provenance" "." CLASS | IDENT) step*
//	step      := "." EDGE ("~")? ("*" | "+" | "?")?
//	expr      := disjunction of comparisons over IDENT, IDENT "." ATTR,
//	             literals, count(...), exists(path)
//
// "~" traverses edges in reverse (descendants); "*" is reflexive
// transitive closure, "+" transitive closure, "?" zero-or-one.
//
// The paper's running example works verbatim:
//
//	select Ancestor
//	from Provenance.file as Atlas
//	     Atlas.input* as Ancestor
//	where Atlas.name = "atlas-x.gif"
package pql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString
	tokNumber
	tokDot
	tokComma
	tokStar
	tokPlus
	tokQuestion
	tokTilde
	tokLParen
	tokRParen
	tokEq
	tokNeq
	tokLt
	tokLeq
	tokGt
	tokGeq
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// ErrSyntax wraps all lexical and parse errors.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error renders the syntax error with its position.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("pql: syntax error at offset %d: %s", e.Pos, e.Msg)
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '.':
			toks = append(toks, token{tokDot, ".", i})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ",", i})
			i++
		case c == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case c == '+':
			toks = append(toks, token{tokPlus, "+", i})
			i++
		case c == '?':
			toks = append(toks, token{tokQuestion, "?", i})
			i++
		case c == '~':
			toks = append(toks, token{tokTilde, "~", i})
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "(", i})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")", i})
			i++
		case c == '=':
			toks = append(toks, token{tokEq, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokNeq, "!=", i})
				i += 2
			} else {
				return nil, &SyntaxError{i, "unexpected '!'"}
			}
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokLeq, "<=", i})
				i += 2
			} else if i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, token{tokNeq, "<>", i})
				i += 2
			} else {
				toks = append(toks, token{tokLt, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokGeq, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokGt, ">", i})
				i++
			}
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != quote {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, &SyntaxError{i, "unterminated string"}
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9'):
			j := i + 1
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case isIdentStart(rune(c)):
			j := i + 1
			for j < len(src) && isIdentPart(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		default:
			return nil, &SyntaxError{i, fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

// keyword matching is case-insensitive, as in Lorel.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
