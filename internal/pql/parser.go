package pql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a PQL query.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected %s after query", p.cur())
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return &SyntaxError{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectKeyword(kw string) error {
	if !isKeyword(p.cur(), kw) {
		return p.errf("expected %q, got %s", kw, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) query() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		item := SelectItem{Expr: e}
		if isKeyword(p.cur(), "as") {
			p.next()
			if p.cur().kind != tokIdent {
				return nil, p.errf("expected alias, got %s", p.cur())
			}
			item.Alias = p.next().text
		}
		q.Select = append(q.Select, item)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		b, err := p.binding()
		if err != nil {
			return nil, err
		}
		q.Bindings = append(q.Bindings, b)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		// Bindings may also be separated by whitespace only (as in the
		// paper's example); stop at "where" or EOF.
		if isKeyword(p.cur(), "where") || p.cur().kind == tokEOF {
			break
		}
		if p.cur().kind != tokIdent {
			return nil, p.errf("expected binding or 'where', got %s", p.cur())
		}
	}
	if isKeyword(p.cur(), "where") {
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	return q, nil
}

func (p *parser) binding() (Binding, error) {
	path, err := p.path()
	if err != nil {
		return Binding{}, err
	}
	if err := p.expectKeyword("as"); err != nil {
		return Binding{}, err
	}
	if p.cur().kind != tokIdent {
		return Binding{}, p.errf("expected variable name, got %s", p.cur())
	}
	return Binding{Path: path, Var: p.next().text}, nil
}

func (p *parser) path() (Path, error) {
	if p.cur().kind != tokIdent {
		return Path{}, p.errf("expected path root, got %s", p.cur())
	}
	root := p.next().text
	var path Path
	if strings.EqualFold(root, "Provenance") {
		if p.cur().kind != tokDot {
			return Path{}, p.errf("expected '.' after Provenance")
		}
		p.next()
		if p.cur().kind != tokIdent {
			return Path{}, p.errf("expected class after Provenance., got %s", p.cur())
		}
		path.Class = strings.ToLower(p.next().text)
	} else {
		path.RootVar = root
	}
	for p.cur().kind == tokDot {
		p.next()
		if p.cur().kind != tokIdent {
			return Path{}, p.errf("expected edge name after '.', got %s", p.cur())
		}
		step := Step{Edge: strings.ToLower(p.next().text)}
		if p.cur().kind == tokTilde {
			p.next()
			step.Reverse = true
		}
		switch p.cur().kind {
		case tokStar:
			p.next()
			step.Closure = ClosureStar
		case tokPlus:
			p.next()
			step.Closure = ClosurePlus
		case tokQuestion:
			p.next()
			step.Closure = ClosureOpt
		}
		path.Steps = append(path.Steps, step)
	}
	return path, nil
}

// Expression grammar: or → and → not → comparison → primary.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for isKeyword(p.cur(), "or") {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for isKeyword(p.cur(), "and") {
		p.next()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if isKeyword(p.cur(), "not") {
		p.next()
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.cmpExpr()
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	var op string
	switch {
	case p.cur().kind == tokEq:
		op = "="
	case p.cur().kind == tokNeq:
		op = "!="
	case p.cur().kind == tokLt:
		op = "<"
	case p.cur().kind == tokLeq:
		op = "<="
	case p.cur().kind == tokGt:
		op = ">"
	case p.cur().kind == tokGeq:
		op = ">="
	case isKeyword(p.cur(), "like"):
		op = "like"
	default:
		return l, nil
	}
	p.next()
	r, err := p.primary()
	if err != nil {
		return nil, err
	}
	return &BinaryExpr{Op: op, L: l, R: r}, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokRParen {
			return nil, p.errf("expected ')', got %s", p.cur())
		}
		p.next()
		return e, nil
	case t.kind == tokString:
		p.next()
		return &StringLit{V: t.text}, nil
	case t.kind == tokNumber:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &NumberLit{V: v}, nil
	case isKeyword(t, "true"):
		p.next()
		return &BoolLit{V: true}, nil
	case isKeyword(t, "false"):
		p.next()
		return &BoolLit{V: false}, nil
	case isKeyword(t, "count"):
		p.next()
		if p.cur().kind != tokLParen {
			return nil, p.errf("expected '(' after count")
		}
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokRParen {
			return nil, p.errf("expected ')' after count argument")
		}
		p.next()
		return &CountExpr{E: e}, nil
	case isKeyword(t, "exists"):
		p.next()
		if p.cur().kind != tokLParen {
			return nil, p.errf("expected '(' after exists")
		}
		p.next()
		path, err := p.path()
		if err != nil {
			return nil, err
		}
		if p.cur().kind != tokRParen {
			return nil, p.errf("expected ')' after exists path")
		}
		p.next()
		return &ExistsExpr{Path: path}, nil
	case t.kind == tokIdent:
		p.next()
		if p.cur().kind == tokDot {
			p.next()
			if p.cur().kind != tokIdent {
				return nil, p.errf("expected attribute after '.', got %s", p.cur())
			}
			attr := p.next().text
			return &AttrExpr{Var: t.text, Attr: strings.ToLower(attr)}, nil
		}
		return &VarExpr{Name: t.text}, nil
	default:
		return nil, p.errf("unexpected %s", t)
	}
}
