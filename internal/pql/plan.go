package pql

import (
	"fmt"
	"strings"
)

// The planner splits Eval into two phases: PlanQuery analyzes the parsed
// query once — WHERE conjuncts are assigned to the earliest binding that
// decides them, and sargable predicates on binding roots are pushed into
// index-backed root enumeration — and the executor (exec.go) then expands
// bindings lazily per tuple, so dependent paths are only walked for tuples
// that survive the already-decidable conjuncts.
//
// Pushdown never replaces a predicate: the index narrows the candidate
// roots to a superset of the matches (labels index every value an object
// has ever carried, not just the current one), and the conjunct is still
// evaluated as a filter, so planned and naive evaluation return identical
// result sets for every query that evaluates without error. Evaluation
// *errors* are the one place the two can part ways: reordering conjuncts
// and pruning tuples early means a failing conjunct (type-mismatched
// comparison, unbound variable) may run for a partial tuple the naive
// cross-product never built, or be skipped for tuples pushdown filtered
// out — the usual planner contract.

// accessKind is how a binding's roots are enumerated.
type accessKind int

const (
	accessAllRefs  accessKind = iota // every object version (Provenance.obj)
	accessTypeScan                   // type-index scan
	accessNameSeek                   // name-index seek, optionally type-checked
	accessVar                        // rooted at an earlier binding's variable
)

// bindPlan is the planned form of one FROM binding.
type bindPlan struct {
	b       Binding
	access  accessKind
	typ     string // record TYPE for accessTypeScan/accessNameSeek; "" = any
	name    string // name literal for accessNameSeek
	filters []Expr // WHERE conjuncts decidable once this binding is bound
}

// Plan is an executable query plan. Build one with PlanQuery; it is
// read-only afterwards and may be executed any number of times, over any
// graph.
type Plan struct {
	q        *Query
	binds    []bindPlan
	residual []Expr // WHERE conjuncts of a binding-less query
}

// PlanQuery plans a parsed query. Planning is purely syntactic — it
// consults no data — so the same plan serves any database.
func PlanQuery(q *Query) *Plan {
	p := &Plan{q: q, binds: make([]bindPlan, len(q.Bindings))}
	bound := make(map[string]int, len(q.Bindings))
	for i, b := range q.Bindings {
		bp := bindPlan{b: b}
		switch {
		case b.Path.RootVar != "":
			bp.access = accessVar
		default:
			typ, all := classType(b.Path.Class)
			if all {
				bp.access = accessAllRefs
			} else {
				bp.access = accessTypeScan
				bp.typ = typ
			}
		}
		p.binds[i] = bp
		bound[b.Var] = i // duplicate variables: the last binding wins
	}
	for _, c := range conjuncts(q.Where) {
		if len(p.binds) == 0 {
			p.residual = append(p.residual, c)
			continue
		}
		at := 0
		for v := range exprVars(c) {
			i, ok := bound[v]
			if !ok {
				// Unbound variable: defer to the last binding, so the
				// error is reported only for tuples that survive every
				// decidable filter (mirroring naive AND short-circuiting).
				i = len(p.binds) - 1
			}
			if i > at {
				at = i
			}
		}
		bp := &p.binds[at]
		p.pushdown(bp, c)
		bp.filters = append(bp.filters, c)
	}
	return p
}

// pushdown upgrades bp's access path when c is a sargable equality on the
// binding's root. Eligible shapes: the binding is class-rooted with no path
// steps, and c is <var>.name = "lit" or <var>.type = "lit" (either operand
// order) over that variable alone. OR, negation, and cross-binding
// predicates are never pushed.
func (p *Plan) pushdown(bp *bindPlan, c Expr) {
	if bp.access == accessVar || len(bp.b.Path.Steps) > 0 {
		return
	}
	attr, lit, ok := eqAttrLit(c, bp.b.Var)
	if !ok {
		return
	}
	switch attr {
	case "name":
		if bp.access != accessNameSeek {
			bp.name = lit
			bp.access = accessNameSeek
		}
	case "type":
		// Only useful when the class doesn't already pin a type; an
		// accessNameSeek keeps its (more selective) name.
		if bp.access == accessAllRefs {
			bp.typ = lit
			bp.access = accessTypeScan
		}
	}
}

// eqAttrLit matches c against <v>.<attr> = "lit" with either operand order.
func eqAttrLit(c Expr, v string) (attr, lit string, ok bool) {
	be, isBin := c.(*BinaryExpr)
	if !isBin || be.Op != "=" {
		return "", "", false
	}
	try := func(l, r Expr) (string, string, bool) {
		a, aok := l.(*AttrExpr)
		s, sok := r.(*StringLit)
		if aok && sok && a.Var == v {
			return a.Attr, s.V, true
		}
		return "", "", false
	}
	if attr, lit, ok = try(be.L, be.R); ok {
		return attr, lit, true
	}
	return try(be.R, be.L)
}

// conjuncts flattens the top-level AND spine of e, preserving left-to-right
// order. A nil WHERE yields none.
func conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*BinaryExpr); ok && be.Op == "and" {
		return append(conjuncts(be.L), conjuncts(be.R)...)
	}
	return []Expr{e}
}

// exprVars collects every variable an expression mentions.
func exprVars(e Expr) map[string]bool {
	vars := make(map[string]bool)
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *NotExpr:
			walk(x.E)
		case *CountExpr:
			walk(x.E)
		case *VarExpr:
			vars[x.Name] = true
		case *AttrExpr:
			vars[x.Var] = true
		case *ExistsExpr:
			if x.Path.RootVar != "" {
				vars[x.Path.RootVar] = true
			}
		}
	}
	walk(e)
	return vars
}

// Describe renders the plan for ExplainQuery and the \explain shell
// command.
func (p *Plan) Describe() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan: %d binding(s)\n", len(p.binds))
	for i, bp := range p.binds {
		fmt.Fprintf(&sb, "  %d. %s <- %s", i+1, bp.b.Var, bp.accessString())
		if len(bp.b.Path.Steps) > 0 {
			sb.WriteString(" then")
			for _, s := range bp.b.Path.Steps {
				sb.WriteString(" ." + stepString(s))
			}
		}
		sb.WriteByte('\n')
		for _, f := range bp.filters {
			fmt.Fprintf(&sb, "       filter %s\n", exprString(f))
		}
	}
	if closes(p.q) {
		sb.WriteString("  closures: memoized per query\n")
	}
	return sb.String()
}

func (bp *bindPlan) accessString() string {
	switch bp.access {
	case accessNameSeek:
		if bp.typ != "" {
			return fmt.Sprintf("name seek %q (type %s)", bp.name, bp.typ)
		}
		return fmt.Sprintf("name seek %q", bp.name)
	case accessTypeScan:
		return fmt.Sprintf("type scan %s", bp.typ)
	case accessVar:
		return "var " + bp.b.Path.RootVar
	default:
		return "full scan (all refs)"
	}
}

// closes reports whether any path in the query carries a closure step.
func closes(q *Query) bool {
	has := func(p Path) bool {
		for _, s := range p.Steps {
			if s.Closure == ClosureStar || s.Closure == ClosurePlus {
				return true
			}
		}
		return false
	}
	for _, b := range q.Bindings {
		if has(b.Path) {
			return true
		}
	}
	var walk func(Expr) bool
	walk = func(e Expr) bool {
		switch x := e.(type) {
		case *BinaryExpr:
			return walk(x.L) || walk(x.R)
		case *NotExpr:
			return walk(x.E)
		case *CountExpr:
			return walk(x.E)
		case *ExistsExpr:
			return has(x.Path)
		}
		return false
	}
	return q.Where != nil && walk(q.Where)
}

func stepString(s Step) string {
	out := s.Edge
	if s.Reverse {
		out += "~"
	}
	switch s.Closure {
	case ClosureStar:
		out += "*"
	case ClosurePlus:
		out += "+"
	case ClosureOpt:
		out += "?"
	}
	return out
}

// exprString renders an expression roughly as it was written.
func exprString(e Expr) string {
	switch x := e.(type) {
	case *BinaryExpr:
		return fmt.Sprintf("%s %s %s", exprString(x.L), x.Op, exprString(x.R))
	case *NotExpr:
		return "not (" + exprString(x.E) + ")"
	case *VarExpr:
		return x.Name
	case *AttrExpr:
		return x.Var + "." + x.Attr
	case *StringLit:
		return fmt.Sprintf("%q", x.V)
	case *NumberLit:
		return fmt.Sprintf("%d", x.V)
	case *BoolLit:
		return fmt.Sprintf("%t", x.V)
	case *CountExpr:
		return "count(" + exprString(x.E) + ")"
	case *ExistsExpr:
		root := x.Path.RootVar
		if x.Path.Class != "" {
			root = "Provenance." + x.Path.Class
		}
		for _, s := range x.Path.Steps {
			root += "." + stepString(s)
		}
		return "exists(" + root + ")"
	default:
		return "?"
	}
}
