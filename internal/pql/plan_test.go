package pql

import (
	"strings"
	"testing"
)

func mustPlan(t *testing.T, src string) *Plan {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return PlanQuery(q)
}

func TestPlanNamePushdown(t *testing.T) {
	p := mustPlan(t, `select A from Provenance.file as F F.input* as A where F.name = "atlas-x.gif"`)
	if p.binds[0].access != accessNameSeek || p.binds[0].name != "atlas-x.gif" || p.binds[0].typ != "FILE" {
		t.Fatalf("binding 0 = %+v, want name seek", p.binds[0])
	}
	// The predicate is retained as a filter (the index is a superset).
	if len(p.binds[0].filters) != 1 {
		t.Fatalf("binding 0 filters = %v", p.binds[0].filters)
	}
	if p.binds[1].access != accessVar || len(p.binds[1].filters) != 0 {
		t.Fatalf("binding 1 = %+v, want var access", p.binds[1])
	}
	d := p.Describe()
	for _, want := range []string{`name seek "atlas-x.gif"`, "filter F.name", "memoized"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestPlanReversedOperandsPushdown(t *testing.T) {
	p := mustPlan(t, `select F from Provenance.file as F where "x" = F.name`)
	if p.binds[0].access != accessNameSeek || p.binds[0].name != "x" {
		t.Fatalf("literal-first equality not pushed: %+v", p.binds[0])
	}
}

func TestPlanTypePushdownOnObj(t *testing.T) {
	p := mustPlan(t, `select X from Provenance.obj as X where X.type = "PROC"`)
	if p.binds[0].access != accessTypeScan || p.binds[0].typ != "PROC" {
		t.Fatalf("type pushdown on obj failed: %+v", p.binds[0])
	}
	// A typed class keeps its class type; the literal stays a filter only.
	p = mustPlan(t, `select X from Provenance.file as X where X.type = "PROC"`)
	if p.binds[0].access != accessTypeScan || p.binds[0].typ != "FILE" {
		t.Fatalf("class type clobbered: %+v", p.binds[0])
	}
}

func TestPlanIneligibleShapes(t *testing.T) {
	// OR is not conjunct-splittable.
	p := mustPlan(t, `select F from Provenance.file as F where F.name = "a" or F.name = "b"`)
	if p.binds[0].access != accessTypeScan {
		t.Fatalf("OR must not push down: %+v", p.binds[0])
	}
	// Negation.
	p = mustPlan(t, `select F from Provenance.file as F where not (F.name = "a")`)
	if p.binds[0].access != accessTypeScan {
		t.Fatalf("NOT must not push down: %+v", p.binds[0])
	}
	// Cross-binding predicates belong to the later binding and cannot seek.
	p = mustPlan(t, `select A from Provenance.file as F F.input* as A where F.name = A.name`)
	if p.binds[0].access != accessTypeScan || len(p.binds[0].filters) != 0 {
		t.Fatalf("cross-binding leaked to binding 0: %+v", p.binds[0])
	}
	if len(p.binds[1].filters) != 1 {
		t.Fatalf("cross-binding filter not at binding 1: %+v", p.binds[1])
	}
	// LIKE is not an equality.
	p = mustPlan(t, `select F from Provenance.file as F where F.name like "a*"`)
	if p.binds[0].access != accessTypeScan {
		t.Fatalf("LIKE must not push down: %+v", p.binds[0])
	}
	// A class root with path steps: the name applies to the step result,
	// not the root, so no seek.
	p = mustPlan(t, `select A from Provenance.file.input* as A where A.name = "a"`)
	if p.binds[0].access != accessTypeScan || p.binds[0].typ != "FILE" {
		t.Fatalf("stepped root must not push down: %+v", p.binds[0])
	}
}

func TestPlanConjunctAssignment(t *testing.T) {
	p := mustPlan(t, `
		select A from Provenance.file as F F.input* as A
		where F.name = "x" and A.version = 1 and F.version >= 1 and 1 <= 2`)
	// F.name (pushed, retained), F.version, and the constant go to binding
	// 0; A.version waits for binding 1.
	if len(p.binds[0].filters) != 3 {
		t.Fatalf("binding 0 filters = %d, want 3", len(p.binds[0].filters))
	}
	if len(p.binds[1].filters) != 1 {
		t.Fatalf("binding 1 filters = %d, want 1", len(p.binds[1].filters))
	}
}

func TestPlanUnboundVariableDefersToLastBinding(t *testing.T) {
	p := mustPlan(t, `select F from Provenance.file as F F.input as A where Y.name = "x"`)
	if len(p.binds[1].filters) != 1 {
		t.Fatalf("unbound-var conjunct not deferred: %+v", p.binds)
	}
}

func TestPlanExplainOutputStable(t *testing.T) {
	d := mustPlan(t, `select count(A) from Provenance.obj as X X.input+ as A where exists(X.input) and X.type = "FILE"`).Describe()
	for _, want := range []string{"type scan FILE", "exists(X.input)", "var X then .input+", "memoized"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q:\n%s", want, d)
		}
	}
}
