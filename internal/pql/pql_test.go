package pql

import (
	"strings"
	"testing"

	"passv2/internal/graph"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/waldo"
)

func ref(p uint64, v uint32) pnode.Ref {
	return pnode.Ref{PNode: pnode.PNode(p), Version: pnode.Version(v)}
}

// buildGraph constructs the paper's running example:
//
//	atlas-x.gif ← convert ← softmean ← reslice ← align_warp ← anatomy.img
//
// with TYPE/NAME records for each, as two chained processes and files.
func buildGraph() *graph.Graph {
	db := waldo.NewDB()
	add := func(r pnode.Ref, name, typ string) {
		db.Apply(record.New(r, record.AttrName, record.StringVal(name)))
		db.Apply(record.New(r, record.AttrType, record.StringVal(typ)))
	}
	atlas := ref(1, 1)
	convert := ref(2, 1)
	softmean := ref(3, 1)
	mean := ref(4, 1) // intermediate file
	anatomy := ref(5, 1)
	add(atlas, "atlas-x.gif", record.TypeFile)
	add(convert, "convert", record.TypeProc)
	add(softmean, "softmean", record.TypeProc)
	add(mean, "atlas-x.img", record.TypeFile)
	add(anatomy, "anatomy.img", record.TypeFile)
	db.Apply(record.Input(atlas, convert))
	db.Apply(record.Input(convert, mean))
	db.Apply(record.Input(mean, softmean))
	db.Apply(record.Input(softmean, anatomy))
	return graph.New(db)
}

func run(t *testing.T, g *graph.Graph, q string) *Result {
	t.Helper()
	res, err := Run(g, q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

func names(res *Result) []string {
	var out []string
	for _, row := range res.Rows {
		out = append(out, row[0].String())
	}
	return out
}

func TestPaperExampleQuery(t *testing.T) {
	g := buildGraph()
	// Verbatim from §5.7 of the paper.
	res := run(t, g, `
		select Ancestor
		from Provenance.file as Atlas
		     Atlas.input* as Ancestor
		where Atlas.name = "atlas-x.gif"`)
	got := strings.Join(names(res), "\n")
	for _, want := range []string{"atlas-x.gif", "convert", "softmean", "atlas-x.img", "anatomy.img"} {
		if !strings.Contains(got, want) {
			t.Errorf("ancestor %q missing from result:\n%s", want, got)
		}
	}
	if len(res.Rows) != 5 {
		t.Errorf("got %d rows, want 5", len(res.Rows))
	}
}

func TestPlusClosureExcludesStart(t *testing.T) {
	g := buildGraph()
	res := run(t, g, `
		select A from Provenance.file as F F.input+ as A
		where F.name = "atlas-x.gif"`)
	for _, n := range names(res) {
		if strings.Contains(n, "atlas-x.gif") {
			t.Fatal("input+ must not include the start node")
		}
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestSingleStepAndOptional(t *testing.T) {
	g := buildGraph()
	res := run(t, g, `
		select A from Provenance.file as F F.input as A
		where F.name = "atlas-x.gif"`)
	if len(res.Rows) != 1 || !strings.Contains(res.Rows[0][0].String(), "convert") {
		t.Fatalf("single step = %v", names(res))
	}
	res = run(t, g, `
		select A from Provenance.file as F F.input? as A
		where F.name = "atlas-x.gif"`)
	if len(res.Rows) != 2 {
		t.Fatalf("optional step rows = %d", len(res.Rows))
	}
}

func TestReverseTraversalDescendants(t *testing.T) {
	g := buildGraph()
	// What descends from anatomy.img? (the malware-spread query shape)
	res := run(t, g, `
		select D from Provenance.file as F F.input~* as D
		where F.name = "anatomy.img"`)
	got := strings.Join(names(res), "\n")
	for _, want := range []string{"atlas-x.gif", "convert", "softmean"} {
		if !strings.Contains(got, want) {
			t.Errorf("descendant %q missing:\n%s", want, got)
		}
	}
}

func TestWhereOperators(t *testing.T) {
	g := buildGraph()
	res := run(t, g, `select F from Provenance.file as F where F.name like "atlas-*"`)
	if len(res.Rows) != 2 {
		t.Fatalf("like rows = %v", names(res))
	}
	res = run(t, g, `select F from Provenance.file as F where not (F.name = "anatomy.img")`)
	if len(res.Rows) != 2 {
		t.Fatalf("not rows = %v", names(res))
	}
	res = run(t, g, `select F from Provenance.file as F
		where F.name = "anatomy.img" or F.name = "atlas-x.gif"`)
	if len(res.Rows) != 2 {
		t.Fatalf("or rows = %v", names(res))
	}
	res = run(t, g, `select F from Provenance.file as F
		where F.name != "anatomy.img" and F.version = 1`)
	if len(res.Rows) != 2 {
		t.Fatalf("and rows = %v", names(res))
	}
	res = run(t, g, `select F from Provenance.file as F where F.version >= 1 and F.version <= 1`)
	if len(res.Rows) != 3 {
		t.Fatalf("range rows = %v", names(res))
	}
}

func TestCountAggregate(t *testing.T) {
	g := buildGraph()
	res := run(t, g, `
		select count(A) from Provenance.file as F F.input* as A
		where F.name = "atlas-x.gif"`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 5 {
		t.Fatalf("count = %v", res.Rows)
	}
}

func TestExistsSubquery(t *testing.T) {
	g := buildGraph()
	// Files that have at least one ancestor named convert: use exists
	// over a path from the bound variable.
	res := run(t, g, `
		select F from Provenance.file as F
		where exists(F.input)`)
	// atlas-x.gif and atlas-x.img have process inputs; anatomy.img has none.
	if len(res.Rows) != 2 {
		t.Fatalf("exists rows = %v", names(res))
	}
}

func TestMultipleSelectItemsAndAliases(t *testing.T) {
	g := buildGraph()
	res := run(t, g, `
		select F.name as file, F.version as v
		from Provenance.file as F
		where F.name = "atlas-x.gif"`)
	if res.Columns[0] != "file" || res.Columns[1] != "v" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Rows[0][0].Str != "atlas-x.gif" || res.Rows[0][1].Int != 1 {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestProvenanceObjRoot(t *testing.T) {
	g := buildGraph()
	res := run(t, g, `select count(X) from Provenance.obj as X`)
	if res.Rows[0][0].Int != 5 {
		t.Fatalf("obj count = %v", res.Rows[0][0])
	}
}

func TestAttrEdgeTraversal(t *testing.T) {
	// A FILE_URL-style ref attribute can be followed as an edge.
	db := waldo.NewDB()
	sess := ref(10, 1)
	file := ref(11, 1)
	db.Apply(record.New(sess, record.AttrType, record.StringVal(record.TypeSession)))
	db.Apply(record.New(file, record.AttrType, record.StringVal(record.TypeFile)))
	db.Apply(record.New(file, record.AttrName, record.StringVal("dl.bin")))
	db.Apply(record.New(file, record.Attr("SESSION"), record.Ref(sess)))
	g := graph.New(db)
	res := run(t, g, `select S from Provenance.file as F F.session as S`)
	if len(res.Rows) != 1 || res.Rows[0][0].Ref != sess {
		t.Fatalf("attr edge = %v", res.Rows)
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	g := buildGraph()
	res := run(t, g, `select F from Provenance.file as F where F.params = "x"`)
	if len(res.Rows) != 0 {
		t.Fatal("comparison against missing attribute must be false")
	}
}

func TestCycleSafeClosure(t *testing.T) {
	// A malformed database containing a cycle must not hang the engine.
	db := waldo.NewDB()
	a, b := ref(1, 1), ref(2, 1)
	db.Apply(record.New(a, record.AttrType, record.StringVal(record.TypeFile)))
	db.Apply(record.New(a, record.AttrName, record.StringVal("a")))
	db.Apply(record.Input(a, b))
	db.Apply(record.Input(b, a))
	g := graph.New(db)
	res := run(t, g, `select X from Provenance.file as F F.input* as X where F.name = "a"`)
	if len(res.Rows) != 2 {
		t.Fatalf("cyclic closure rows = %d", len(res.Rows))
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select X",
		"select X from",
		"select X from Provenance.file", // missing as
		"select X from Provenance.file as F where", // missing cond
		`select X from F.input* as X where X.name = `,
		`select X from Provenance. as X`,
		`select X from Provenance.file as F where F.name = "unterminated`,
		`select count(X from Provenance.file as X`,
		`select X from Provenance.file as F extra`,
	}
	for _, q := range bad {
		if _, err := Run(buildGraph(), q); err == nil {
			t.Errorf("query %q should not parse", q)
		}
	}
}

func TestUnboundVariableError(t *testing.T) {
	if _, err := Run(buildGraph(), `select Y from Provenance.file as F where Y.name = "x"`); err == nil {
		t.Fatal("unbound variable must error")
	}
}

func TestReverseNonInputRejected(t *testing.T) {
	if _, err := Run(buildGraph(), `select X from Provenance.file as F F.params~ as X`); err == nil {
		t.Fatal("reverse of non-input edge must be rejected")
	}
}

func TestFormatTable(t *testing.T) {
	g := buildGraph()
	res := run(t, g, `select F.name from Provenance.file as F`)
	out := res.Format()
	if !strings.Contains(out, "F.name") || !strings.Contains(out, "atlas-x.gif") {
		t.Fatalf("format:\n%s", out)
	}
	empty := &Result{Columns: []string{"x"}}
	if empty.Format() != "(no results)\n" {
		t.Fatal("empty format wrong")
	}
}

func TestMultiSourceGraphUnion(t *testing.T) {
	// Two databases, edge crossing them: Kepler on one volume, files on
	// another (the layered query the paper is about).
	db1 := waldo.NewDB()
	db2 := waldo.NewDB()
	out := ref(1, 1)
	op := ref(2, 1)
	db1.Apply(record.New(out, record.AttrName, record.StringVal("result.dat")))
	db1.Apply(record.New(out, record.AttrType, record.StringVal(record.TypeFile)))
	db1.Apply(record.Input(out, op))
	db2.Apply(record.New(op, record.AttrName, record.StringVal("align_warp")))
	db2.Apply(record.New(op, record.AttrType, record.StringVal(record.TypeOperator)))
	g := graph.New(db1, db2)
	res := run(t, g, `
		select A from Provenance.file as F F.input* as A
		where F.name = "result.dat"`)
	joined := strings.Join(names(res), "\n")
	if !strings.Contains(joined, "align_warp") {
		t.Fatalf("cross-database ancestry broken:\n%s", joined)
	}
}
