package provlog

import (
	"fmt"
	"math/rand"
	"testing"

	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// TestPropertyRandomEntrySequences writes random interleavings of all
// entry types under random buffering and rotation settings and asserts
// the scan returns exactly the appended sequence.
func TestPropertyRandomEntrySequences(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			fs := vfs.NewMemFS("lower", nil)
			maxSize := int64(0)
			if rng.Intn(2) == 0 {
				maxSize = int64(rng.Intn(2048) + 256)
			}
			w, err := NewWriter(fs, "/.prov", maxSize)
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(2) == 0 {
				w.SetBuffer(rng.Intn(4096) + 1)
			}

			type expEntry struct {
				typ EntryType
				txn uint64
				rec record.Record
				d   DataDesc
			}
			var want []expEntry
			n := rng.Intn(300) + 10
			for i := 0; i < n; i++ {
				switch rng.Intn(4) {
				case 0, 1:
					txn := uint64(rng.Intn(3))
					r := record.Input(
						pnode.Ref{PNode: pnode.PNode(rng.Intn(50) + 1), Version: pnode.Version(rng.Intn(3) + 1)},
						pnode.Ref{PNode: pnode.PNode(rng.Intn(50) + 1), Version: 1},
					)
					if err := w.AppendRecord(txn, r); err != nil {
						t.Fatal(err)
					}
					want = append(want, expEntry{typ: EntryRecord, txn: txn, rec: r})
				case 2:
					data := make([]byte, rng.Intn(64))
					rng.Read(data)
					ref := pnode.Ref{PNode: pnode.PNode(rng.Intn(50) + 1), Version: 1}
					off := int64(rng.Intn(1000))
					if err := w.AppendData(ref, off, data); err != nil {
						t.Fatal(err)
					}
					e := expEntry{typ: EntryData}
					e.d.Ref = ref
					e.d.Off = off
					e.d.Len = int32(len(data))
					want = append(want, e)
				case 3:
					txn := uint64(rng.Intn(5) + 1)
					if rng.Intn(2) == 0 {
						if err := w.AppendBeginTxn(txn); err != nil {
							t.Fatal(err)
						}
						want = append(want, expEntry{typ: EntryBeginTxn, txn: txn})
					} else {
						if err := w.AppendEndTxn(txn); err != nil {
							t.Fatal(err)
						}
						want = append(want, expEntry{typ: EntryEndTxn, txn: txn})
					}
				}
				if rng.Intn(40) == 0 {
					if err := w.Rotate(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}

			var got []Entry
			if err := ScanAll(fs, "/.prov", func(e Entry) error {
				got = append(got, e)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("scanned %d entries, want %d", len(got), len(want))
			}
			for i := range got {
				g, x := got[i], want[i]
				if g.Type != x.typ {
					t.Fatalf("entry %d type %v want %v", i, g.Type, x.typ)
				}
				switch x.typ {
				case EntryRecord:
					if g.Txn != x.txn || !g.Rec.Equal(x.rec) {
						t.Fatalf("entry %d record mismatch", i)
					}
				case EntryData:
					if g.Data.Ref != x.d.Ref || g.Data.Off != x.d.Off || g.Data.Len != x.d.Len {
						t.Fatalf("entry %d data desc mismatch", i)
					}
				case EntryBeginTxn, EntryEndTxn:
					if g.Txn != x.txn {
						t.Fatalf("entry %d txn %d want %d", i, g.Txn, x.txn)
					}
				}
			}
		})
	}
}
