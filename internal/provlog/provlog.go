// Package provlog implements Lasagna's on-disk provenance log (§5.6).
// PASSv2 writes all provenance records to a log rather than directly into
// databases (PASSv1's arrangement, which was neither flexible nor
// scalable); the user-level Waldo daemon later moves the provenance into a
// database and indexes it.
//
// The log enforces write-ahead provenance (WAP), analogous to database
// write-ahead logging: all provenance records reach the log before the
// data they describe reaches the lower file system, so unprovenanced data
// can never exist on disk. Data entries carry MD5 checksums; after a
// crash, recovery compares them against the lower file system to identify
// precisely the data being written at crash time.
//
// Entry framing: u32 little-endian length, u8 type, payload, u32 CRC-32
// (IEEE) over type+payload. A torn final entry (short frame or bad CRC)
// marks the crash point; everything before it is trusted.
package provlog

import (
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"passv2/internal/mmr"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// Entry types.
type EntryType uint8

const (
	// EntryRecord carries one provenance record, tagged with the NFS
	// transaction it belongs to (0 = none).
	EntryRecord EntryType = 1
	// EntryData describes a data write: which object version, where, how
	// long, and the MD5 of the bytes. Written after the records that
	// describe the data and before the data itself (WAP).
	EntryData EntryType = 2
	// EntryBeginTxn / EntryEndTxn delimit an NFS provenance transaction
	// (§6.1.2). Waldo discards records of transactions that never end —
	// the orphaned provenance of a crashed client.
	EntryBeginTxn EntryType = 3
	EntryEndTxn   EntryType = 4
)

// Entry is one decoded log entry.
type Entry struct {
	Type EntryType
	Txn  uint64        // EntryRecord, EntryBeginTxn, EntryEndTxn
	Rec  record.Record // EntryRecord
	Data DataDesc      // EntryData
}

// DataDesc describes one data write covered by WAP.
type DataDesc struct {
	Ref pnode.Ref
	Off int64
	Len int32
	MD5 [md5.Size]byte
}

// ErrTorn reports a truncated or corrupt log tail.
var ErrTorn = errors.New("provlog: torn log tail")

// CurrentName is the active log file name inside the log directory.
const CurrentName = "log.current"

// Writer appends entries to the active log on a lower file system,
// rotating it when it exceeds MaxSize. Rotated logs are named log.NNNNNNNN
// in sequence order. It is safe for concurrent use.
type Writer struct {
	fs  vfs.FS
	dir string

	// MaxSize triggers rotation; 0 means never rotate by size.
	MaxSize int64

	mu       sync.Mutex
	f        vfs.File
	size     int64
	seq      uint64
	buf      []byte      // write-behind buffer (page cache for the log)
	bufSize  int         // 0 = write-through
	noRotate string      // non-empty: rotation refused, with this reason
	notify   chan string // rotated file paths for Waldo (simulated inotify)

	// Tamper evidence (DESIGN.md §13): every appended record frame also
	// becomes an MMR leaf keyed by its global byte offset — the offset in
	// the whole log stream, stable across rotation because globalBase
	// accumulates the rotated files' sizes.
	mmr        *mmr.MMR
	mmrVol     string
	globalBase int64
}

// NewWriter opens (creating if needed) the log directory and active log.
// The notify channel (capacity 64) announces rotated log paths.
func NewWriter(fs vfs.FS, dir string, maxSize int64) (*Writer, error) {
	dir = vfs.Clean(dir)
	if err := fs.MkdirAll(dir); err != nil && !errors.Is(err, vfs.ErrExist) {
		return nil, err
	}
	w := &Writer{fs: fs, dir: dir, MaxSize: maxSize, notify: make(chan string, 64)}
	// Resume the sequence after any existing rotated logs.
	ents, err := fs.ReadDir(dir)
	if err == nil {
		for _, e := range ents {
			var n uint64
			if _, serr := fmt.Sscanf(e.Name, "log.%08d", &n); serr == nil {
				if n >= w.seq {
					w.seq = n + 1
				}
				if st, serr := fs.Stat(vfs.Join(dir, e.Name)); serr == nil {
					w.globalBase += st.Size
				}
			}
		}
	}
	f, err := fs.Open(vfs.Join(dir, CurrentName), vfs.OCreate|vfs.ORdWr)
	if err != nil {
		return nil, err
	}
	w.f = f
	w.size = f.Size()
	return w, nil
}

// Notify returns the rotation notification channel.
func (w *Writer) Notify() <-chan string { return w.notify }

// Dir returns the log directory path on the lower FS.
func (w *Writer) Dir() string { return w.dir }

func frame(t EntryType, payload []byte) []byte {
	body := make([]byte, 0, 1+len(payload))
	body = append(body, byte(t))
	body = append(body, payload...)
	out := make([]byte, 0, 8+len(body))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(body)))
	out = append(out, body...)
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
	return out
}

// SetBuffer enables write-behind buffering: appended entries accumulate in
// memory and reach the lower file system when n bytes are pending (or on
// Flush/rotation). Like the kernel page cache over the paper's log, this
// batches the log's disk traffic; WAP ordering within the log is
// unaffected because entries flush in append order.
func (w *Writer) SetBuffer(n int) {
	w.mu.Lock()
	w.bufSize = n
	w.mu.Unlock()
}

// Flush forces buffered entries to the lower file system.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

// Sync flushes buffered entries and fsyncs the active log file: after Sync
// returns, every appended entry survives not just a process kill but an OS
// crash or power loss. The passd append verb calls it before acknowledging
// — it is the durability point of the wire contract.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.flushLocked(); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *Writer) flushLocked() error {
	if len(w.buf) == 0 {
		return nil
	}
	if _, err := w.f.WriteAt(w.buf, w.size); err != nil {
		return err
	}
	w.size += int64(len(w.buf))
	w.buf = w.buf[:0]
	return nil
}

func (w *Writer) append(t EntryType, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	start := w.globalBase + w.size + int64(len(w.buf))
	frame := frame(t, payload)
	if w.bufSize > 0 {
		w.buf = append(w.buf, frame...)
		if len(w.buf) >= w.bufSize {
			if err := w.flushLocked(); err != nil {
				return err
			}
		}
	} else {
		if _, err := w.f.WriteAt(frame, w.size); err != nil {
			return err
		}
		w.size += int64(len(frame))
	}
	if w.mmr != nil {
		feedFrame(w.mmr, w.mmrVol, start, frame[4:4+1+len(payload)])
	}
	if w.MaxSize > 0 && w.size+int64(len(w.buf)) >= w.MaxSize {
		return w.rotateLocked()
	}
	return nil
}

// AppendRecord logs one provenance record under transaction txn (0=none).
func (w *Writer) AppendRecord(txn uint64, r record.Record) error {
	payload := binary.AppendUvarint(nil, txn)
	payload = record.AppendRecord(payload, r)
	return w.append(EntryRecord, payload)
}

// AppendBundle logs a bundle's records in order, under one transaction.
func (w *Writer) AppendBundle(txn uint64, b *record.Bundle) error {
	if b == nil {
		return nil
	}
	for _, r := range b.Records {
		if err := w.AppendRecord(txn, r); err != nil {
			return err
		}
	}
	return nil
}

// AppendData logs a WAP data descriptor for an impending write.
func (w *Writer) AppendData(ref pnode.Ref, off int64, data []byte) error {
	d := DataDesc{Ref: ref, Off: off, Len: int32(len(data)), MD5: md5.Sum(data)}
	return w.append(EntryData, encodeData(d))
}

// AppendBeginTxn / AppendEndTxn delimit an NFS transaction.
func (w *Writer) AppendBeginTxn(txn uint64) error {
	return w.append(EntryBeginTxn, binary.LittleEndian.AppendUint64(nil, txn))
}

// AppendEndTxn closes a transaction. The entry is flushed through to the
// lower file system immediately: a transaction whose ENDTXN is lost would
// be discarded as an orphan even though its pass_write completed.
func (w *Writer) AppendEndTxn(txn uint64) error {
	if err := w.append(EntryEndTxn, binary.LittleEndian.AppendUint64(nil, txn)); err != nil {
		return err
	}
	return w.Flush()
}

// DisableRotation pins the active log: Rotate (and the MaxSize trigger,
// which callers that pin should leave at 0) returns an error naming the
// reason instead of renaming log.current. A replicating daemon pins its
// log because followers mirror log.current by byte offset — renaming it
// out from under the replication stream would restart offsets at zero
// and silently fork every replica.
func (w *Writer) DisableRotation(reason string) {
	w.mu.Lock()
	w.noRotate = reason
	w.mu.Unlock()
}

// Rotate closes the active log, renames it into the sequence and starts a
// new one, notifying Waldo.
func (w *Writer) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotateLocked()
}

func (w *Writer) rotateLocked() error {
	if w.noRotate != "" {
		return fmt.Errorf("provlog: rotation disabled: %s", w.noRotate)
	}
	if err := w.flushLocked(); err != nil {
		return err
	}
	if w.size == 0 {
		return nil
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	name := fmt.Sprintf("log.%08d", w.seq)
	w.seq++
	rotated := vfs.Join(w.dir, name)
	if err := w.fs.Rename(vfs.Join(w.dir, CurrentName), rotated); err != nil {
		return err
	}
	f, err := w.fs.Open(vfs.Join(w.dir, CurrentName), vfs.OCreate|vfs.ORdWr)
	if err != nil {
		return err
	}
	w.f = f
	w.globalBase += w.size // global offsets are stable across the rename
	w.size = 0
	select {
	case w.notify <- rotated:
	default: // Waldo is behind; it scans the directory anyway.
	}
	return nil
}

// Size returns the active log's size in bytes, including buffered entries.
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size + int64(len(w.buf))
}

// CurrentSeq returns the sequence number the active log will receive when
// it is rotated. Waldo uses it as a stable identity for incremental
// tailing: entries seen in log.current remain accounted for after the file
// is renamed to log.<seq>.
func (w *Writer) CurrentSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// ParseSeq extracts the rotation sequence from a log file name
// ("log.00000042" → 42). It returns false for the active log and for
// non-log names.
func ParseSeq(name string) (uint64, bool) {
	var n uint64
	if name == CurrentName {
		return 0, false
	}
	if _, err := fmt.Sscanf(name, "log.%08d", &n); err != nil {
		return 0, false
	}
	return n, true
}

func encodeData(d DataDesc) []byte {
	out := make([]byte, 0, 8+4+8+4+md5.Size)
	out = binary.LittleEndian.AppendUint64(out, uint64(d.Ref.PNode))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Ref.Version))
	out = binary.LittleEndian.AppendUint64(out, uint64(d.Off))
	out = binary.LittleEndian.AppendUint32(out, uint32(d.Len))
	out = append(out, d.MD5[:]...)
	return out
}

func decodeData(p []byte) (DataDesc, error) {
	if len(p) != 8+4+8+4+md5.Size {
		return DataDesc{}, fmt.Errorf("provlog: bad data entry length %d", len(p))
	}
	var d DataDesc
	d.Ref.PNode = pnode.PNode(binary.LittleEndian.Uint64(p))
	d.Ref.Version = pnode.Version(binary.LittleEndian.Uint32(p[8:]))
	d.Off = int64(binary.LittleEndian.Uint64(p[12:]))
	d.Len = int32(binary.LittleEndian.Uint32(p[20:]))
	copy(d.MD5[:], p[24:])
	return d, nil
}

// decodeEntry parses one framed entry body (type byte + payload).
func decodeEntry(body []byte) (Entry, error) {
	if len(body) < 1 {
		return Entry{}, ErrTorn
	}
	t := EntryType(body[0])
	payload := body[1:]
	switch t {
	case EntryRecord:
		txn, n := binary.Uvarint(payload)
		if n <= 0 {
			return Entry{}, fmt.Errorf("provlog: bad txn varint")
		}
		rec, _, err := record.DecodeRecord(payload[n:])
		if err != nil {
			return Entry{}, err
		}
		return Entry{Type: t, Txn: txn, Rec: rec}, nil
	case EntryData:
		d, err := decodeData(payload)
		if err != nil {
			return Entry{}, err
		}
		return Entry{Type: t, Data: d}, nil
	case EntryBeginTxn, EntryEndTxn:
		if len(payload) != 8 {
			return Entry{}, fmt.Errorf("provlog: bad txn entry")
		}
		return Entry{Type: t, Txn: binary.LittleEndian.Uint64(payload)}, nil
	default:
		return Entry{}, fmt.Errorf("provlog: unknown entry type %d", t)
	}
}

// ScanFile iterates the entries of one log file. It stops at a torn tail,
// returning ErrTorn (after delivering all intact entries) — the expected
// condition after a crash mid-append. fn may stop the scan by returning an
// error, which is passed through.
func ScanFile(fs vfs.FS, path string, fn func(Entry) error) error {
	_, err := ScanFileFrom(fs, path, 0, fn)
	return err
}

// ScanFileFrom iterates the entries of one log file starting at byte
// offset off, which must be a frame boundary: 0 or an offset previously
// returned by ScanFileFrom. Only the bytes at and after off are read, so a
// tail that records the returned offset does work proportional to the new
// bytes in the log, not its total size.
//
// The returned offset is the resume point for the next scan: after a clean
// scan it is the end of the last intact frame; with ErrTorn it is the start
// of the torn frame (all intact entries before it have been delivered);
// with an fn error it is the start of the entry fn rejected.
func ScanFileFrom(fs vfs.FS, path string, off int64, fn func(Entry) error) (int64, error) {
	return scanFramesFrom(fs, path, off, func(_ int64, body []byte) error {
		e, err := decodeEntry(body)
		if err != nil {
			return err
		}
		return fn(e)
	})
}

// scanFramesFrom is the raw-frame scan under ScanFileFrom: fn receives
// each intact frame's in-file start offset and its body (type byte +
// payload) without decoding. The MMR rebuild uses it because leaf hashes
// are defined over the framed bytes and their positions, not the decoded
// entries. Offset and error semantics match ScanFileFrom.
func scanFramesFrom(fs vfs.FS, path string, off int64, fn func(off int64, body []byte) error) (int64, error) {
	f, err := fs.Open(path, vfs.ORdOnly)
	if err != nil {
		return off, err
	}
	defer f.Close()
	size := f.Size()
	if off < 0 {
		return off, fmt.Errorf("provlog: negative scan offset %d", off)
	}
	if off >= size {
		return off, nil
	}
	data := make([]byte, size-off)
	n, err := f.ReadAt(data, off)
	if err != nil {
		return off, err
	}
	data = data[:n]
	pos := 0
	for pos < len(data) {
		if pos+4 > len(data) {
			return off + int64(pos), ErrTorn
		}
		n := int(binary.LittleEndian.Uint32(data[pos:]))
		if n < 1 || pos+4+n+4 > len(data) {
			return off + int64(pos), ErrTorn
		}
		body := data[pos+4 : pos+4+n]
		sum := binary.LittleEndian.Uint32(data[pos+4+n:])
		if crc32.ChecksumIEEE(body) != sum {
			return off + int64(pos), ErrTorn
		}
		if err := fn(off+int64(pos), body); err != nil {
			return off + int64(pos), err
		}
		pos += 4 + n + 4
	}
	return off + int64(pos), nil
}

// LogFiles lists a volume's log files in ingest order: rotated logs by
// sequence number, then the active log.
func LogFiles(fs vfs.FS, dir string) ([]string, error) {
	dir = vfs.Clean(dir)
	ents, err := fs.ReadDir(dir)
	if err != nil {
		if errors.Is(err, vfs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var rotated []string
	hasCurrent := false
	for _, e := range ents {
		switch {
		case e.Name == CurrentName:
			hasCurrent = true
		case len(e.Name) > 4 && e.Name[:4] == "log.":
			rotated = append(rotated, e.Name)
		}
	}
	sort.Strings(rotated)
	out := make([]string, 0, len(rotated)+1)
	for _, name := range rotated {
		out = append(out, vfs.Join(dir, name))
	}
	if hasCurrent {
		out = append(out, vfs.Join(dir, CurrentName))
	}
	return out, nil
}

// ScanAll iterates every entry across all of a volume's logs in order.
// Torn tails are tolerated only on the active log (a crash tears at most
// the last file); a torn rotated log is reported as corruption.
func ScanAll(fs vfs.FS, dir string, fn func(Entry) error) error {
	files, err := LogFiles(fs, dir)
	if err != nil {
		return err
	}
	for i, path := range files {
		err := ScanFile(fs, path, fn)
		if errors.Is(err, ErrTorn) {
			if i == len(files)-1 {
				return nil // torn active tail: normal post-crash state
			}
			return fmt.Errorf("provlog: rotated log %s: %w", path, err)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
