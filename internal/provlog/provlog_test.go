package provlog

import (
	"crypto/md5"
	"errors"
	"fmt"
	"strings"
	"testing"

	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

func ref(p uint64, v uint32) pnode.Ref {
	return pnode.Ref{PNode: pnode.PNode(p), Version: pnode.Version(v)}
}

func newLog(t *testing.T) (*Writer, *vfs.MemFS) {
	t.Helper()
	fs := vfs.NewMemFS("lower", nil)
	w, err := NewWriter(fs, "/.prov", 0)
	if err != nil {
		t.Fatal(err)
	}
	return w, fs
}

func scan(t *testing.T, fs vfs.FS, dir string) []Entry {
	t.Helper()
	var out []Entry
	if err := ScanAll(fs, dir, func(e Entry) error {
		out = append(out, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendAndScanRoundTrip(t *testing.T) {
	w, fs := newLog(t)
	r1 := record.Input(ref(3, 1), ref(2, 1))
	r2 := record.New(ref(3, 1), record.AttrName, record.StringVal("/out"))
	if err := w.AppendRecord(0, r1); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBundle(7, record.NewBundle(r2)); err != nil {
		t.Fatal(err)
	}
	data := []byte("the payload")
	if err := w.AppendData(ref(3, 1), 42, data); err != nil {
		t.Fatal(err)
	}
	w.AppendBeginTxn(9)
	w.AppendEndTxn(9)

	ents := scan(t, fs, "/.prov")
	if len(ents) != 5 {
		t.Fatalf("got %d entries", len(ents))
	}
	if ents[0].Type != EntryRecord || !ents[0].Rec.Equal(r1) || ents[0].Txn != 0 {
		t.Fatalf("entry0 = %+v", ents[0])
	}
	if ents[1].Txn != 7 || !ents[1].Rec.Equal(r2) {
		t.Fatalf("entry1 = %+v", ents[1])
	}
	d := ents[2].Data
	if d.Ref != ref(3, 1) || d.Off != 42 || int(d.Len) != len(data) || d.MD5 != md5.Sum(data) {
		t.Fatalf("data desc = %+v", d)
	}
	if ents[3].Type != EntryBeginTxn || ents[3].Txn != 9 {
		t.Fatalf("entry3 = %+v", ents[3])
	}
	if ents[4].Type != EntryEndTxn || ents[4].Txn != 9 {
		t.Fatalf("entry4 = %+v", ents[4])
	}
}

func TestRotationBySize(t *testing.T) {
	fs := vfs.NewMemFS("lower", nil)
	w, err := NewWriter(fs, "/.prov", 256)
	if err != nil {
		t.Fatal(err)
	}
	var want []record.Record
	for i := 0; i < 50; i++ {
		r := record.Input(ref(uint64(i+1), 1), ref(999, 1))
		want = append(want, r)
		if err := w.AppendRecord(0, r); err != nil {
			t.Fatal(err)
		}
	}
	files, err := LogFiles(fs, "/.prov")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("expected several rotated logs, got %v", files)
	}
	// Rotation notifications fired.
	select {
	case <-w.Notify():
	default:
		t.Fatal("no rotation notification")
	}
	// All records survive across rotation, in order.
	ents := scan(t, fs, "/.prov")
	var got []record.Record
	for _, e := range ents {
		if e.Type == EntryRecord {
			got = append(got, e.Rec)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(want[i]) {
			t.Fatalf("record %d reordered", i)
		}
	}
}

func TestManualRotateAndSeqResume(t *testing.T) {
	fs := vfs.NewMemFS("lower", nil)
	w, _ := NewWriter(fs, "/.prov", 0)
	w.AppendRecord(0, record.Input(ref(1, 1), ref(2, 1)))
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Fatal("size must reset after rotate")
	}
	// Empty rotate is a no-op.
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	w.AppendRecord(0, record.Input(ref(3, 1), ref(4, 1)))

	// A new writer over the same directory resumes the sequence.
	w2, err := NewWriter(fs, "/.prov", 0)
	if err != nil {
		t.Fatal(err)
	}
	w2.AppendRecord(0, record.Input(ref(5, 1), ref(6, 1)))
	w2.Rotate()
	files, _ := LogFiles(fs, "/.prov")
	// log.00000000 (first rotate), log.00000001 (second), log.current.
	if len(files) != 3 {
		t.Fatalf("files = %v", files)
	}
	if got := len(scan(t, fs, "/.prov")); got != 3 {
		t.Fatalf("scan found %d records", got)
	}
}

func TestTornTailDetected(t *testing.T) {
	w, fs := newLog(t)
	w.AppendRecord(0, record.Input(ref(1, 1), ref(2, 1)))
	w.AppendRecord(0, record.Input(ref(3, 1), ref(4, 1)))
	// Corrupt the tail: truncate mid-entry.
	path := "/.prov/" + CurrentName
	f, err := fs.Open(path, vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	f.Truncate(f.Size() - 3)
	f.Close()

	var got []Entry
	err = ScanFile(fs, path, func(e Entry) error {
		got = append(got, e)
		return nil
	})
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("want ErrTorn, got %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("intact prefix = %d entries, want 1", len(got))
	}
	// ScanAll tolerates a torn active tail.
	if err := ScanAll(fs, "/.prov", func(Entry) error { return nil }); err != nil {
		t.Fatalf("ScanAll over torn tail: %v", err)
	}
}

func TestCorruptCRCDetected(t *testing.T) {
	w, fs := newLog(t)
	w.AppendRecord(0, record.Input(ref(1, 1), ref(2, 1)))
	path := "/.prov/" + CurrentName
	f, _ := fs.Open(path, vfs.ORdWr)
	// Flip a byte inside the entry body.
	f.WriteAt([]byte{0xFF}, 6)
	f.Close()
	err := ScanFile(fs, path, func(Entry) error { return nil })
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("want ErrTorn on CRC mismatch, got %v", err)
	}
}

func TestScanCallbackError(t *testing.T) {
	w, fs := newLog(t)
	for i := 0; i < 5; i++ {
		w.AppendRecord(0, record.Input(ref(uint64(i+1), 1), ref(9, 1)))
	}
	boom := fmt.Errorf("stop")
	count := 0
	err := ScanAll(fs, "/.prov", func(Entry) error {
		count++
		if count == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || count != 3 {
		t.Fatalf("err=%v count=%d", err, count)
	}
}

func TestLogFilesMissingDir(t *testing.T) {
	fs := vfs.NewMemFS("lower", nil)
	files, err := LogFiles(fs, "/nope")
	if err != nil || files != nil {
		t.Fatalf("missing dir: %v %v", files, err)
	}
}

// TestDisableRotationRefuses pins the active log and checks that Rotate
// refuses (naming the reason) while appends keep working — the guard a
// replicating daemon relies on so log.current is never renamed out from
// under follower byte offsets.
func TestDisableRotationRefuses(t *testing.T) {
	w, fs := newLog(t)
	if err := w.AppendRecord(0, record.Input(ref(3, 1), ref(2, 1))); err != nil {
		t.Fatal(err)
	}
	w.DisableRotation("pinned for replication")
	err := w.Rotate()
	if err == nil {
		t.Fatal("Rotate succeeded on a pinned log")
	}
	if !strings.Contains(err.Error(), "pinned for replication") {
		t.Fatalf("Rotate error %q does not name the pin reason", err)
	}
	// The active log is untouched and still writable.
	if err := w.AppendRecord(0, record.Input(ref(4, 1), ref(2, 1))); err != nil {
		t.Fatalf("append after refused rotation: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	ents := scan(t, fs, "/.prov")
	if len(ents) != 2 {
		t.Fatalf("got %d entries after refused rotation, want 2", len(ents))
	}
}
