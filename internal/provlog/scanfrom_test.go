package provlog

import (
	"errors"
	"testing"

	"passv2/internal/record"
	"passv2/internal/vfs"
)

// TestScanFileFromResume checks the offset contract: scanning from a
// returned offset yields exactly the entries appended in between, and the
// final offset equals the file size.
func TestScanFileFromResume(t *testing.T) {
	w, fs := newLog(t)
	path := "/.prov/" + CurrentName
	for i := 0; i < 5; i++ {
		if err := w.AppendRecord(0, record.Input(ref(uint64(i+1), 1), ref(100, 1))); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	off, err := ScanFileFrom(fs, path, 0, func(Entry) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("scanned %d entries, want 5", n)
	}
	if off != w.Size() {
		t.Fatalf("offset %d, want file size %d", off, w.Size())
	}

	for i := 5; i < 8; i++ {
		if err := w.AppendRecord(0, record.Input(ref(uint64(i+1), 1), ref(100, 1))); err != nil {
			t.Fatal(err)
		}
	}
	var got []Entry
	off2, err := ScanFileFrom(fs, path, off, func(e Entry) error { got = append(got, e); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("resumed scan saw %d entries, want 3", len(got))
	}
	if got[0].Rec.Subject.PNode != 6 {
		t.Fatalf("resumed scan started at pnode %d, want 6", got[0].Rec.Subject.PNode)
	}
	if off2 != w.Size() {
		t.Fatalf("offset %d, want %d", off2, w.Size())
	}

	// Nothing new: no entries, same offset.
	off3, err := ScanFileFrom(fs, path, off2, func(Entry) error {
		t.Fatal("scan past end delivered an entry")
		return nil
	})
	if err != nil || off3 != off2 {
		t.Fatalf("idle scan: off %d err %v", off3, err)
	}
}

// TestScanFileFromTornOffset verifies that a torn tail reports the torn
// frame's start as the resume offset, and that once the tail is repaired
// the resumed scan picks up the replacement entries.
func TestScanFileFromTornOffset(t *testing.T) {
	w, fs := newLog(t)
	path := "/.prov/" + CurrentName
	for i := 0; i < 3; i++ {
		if err := w.AppendRecord(0, record.Input(ref(uint64(i+1), 1), ref(100, 1))); err != nil {
			t.Fatal(err)
		}
	}
	intact := w.Size()
	f, err := fs.Open(path, vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{9, 0, 0, 0, 1, 2}, intact); err != nil { // half a frame
		t.Fatal(err)
	}

	n := 0
	off, err := ScanFileFrom(fs, path, 0, func(Entry) error { n++; return nil })
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("want ErrTorn, got %v", err)
	}
	if n != 3 {
		t.Fatalf("delivered %d intact entries before tear, want 3", n)
	}
	if off != intact {
		t.Fatalf("torn offset %d, want %d (start of torn frame)", off, intact)
	}

	// Repair: truncate the torn frame, append real entries, resume.
	if err := f.Truncate(intact); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := w.AppendRecord(0, record.Input(ref(42, 1), ref(100, 1))); err != nil {
		t.Fatal(err)
	}
	var got []Entry
	off2, err := ScanFileFrom(fs, path, off, func(e Entry) error { got = append(got, e); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Rec.Subject.PNode != 42 {
		t.Fatalf("resumed scan after repair got %v", got)
	}
	if off2 != w.Size() {
		t.Fatalf("offset %d, want %d", off2, w.Size())
	}
}

// TestScanFileMatchesScanFileFrom keeps the wrapper honest: both must
// deliver identical entry streams.
func TestScanFileMatchesScanFileFrom(t *testing.T) {
	w, fs := newLog(t)
	path := "/.prov/" + CurrentName
	w.AppendBeginTxn(3)
	w.AppendRecord(3, record.Input(ref(1, 1), ref(2, 1)))
	w.AppendEndTxn(3)
	w.AppendData(ref(1, 1), 0, []byte("d"))

	var a, b []Entry
	if err := ScanFile(fs, path, func(e Entry) error { a = append(a, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := ScanFileFrom(fs, path, 0, func(e Entry) error { b = append(b, e); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 4 {
		t.Fatalf("entry streams diverge: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Type != b[i].Type || a[i].Txn != b[i].Txn {
			t.Fatalf("entry %d diverges: %+v vs %+v", i, a[i], b[i])
		}
	}
}
