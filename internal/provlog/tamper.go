package provlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"passv2/internal/mmr"
	"passv2/internal/vfs"
)

// Tamper evidence over the log (DESIGN.md §13). Every record frame the
// writer appends is also fed into an MMR leaf keyed by the frame's
// global byte offset — the offset in the concatenation of all rotated
// logs plus the active one, which rotation renames do not disturb. The
// MMR's compact peak state is persisted next to the log (MMRStateName)
// after each durable checkpoint, so a restarting daemon resumes in
// pruned mode instead of rehashing history; proof demands rehydrate it
// by rescanning, and the rescanned root must match the resumed one.

// MMRStateName is the peak-file name inside the log directory.
const MMRStateName = "mmr.state"

// feedFrame routes one intact frame into the MMR: record frames become
// leaves at their global start offset, everything else just advances the
// cursor past the frame.
func feedFrame(m *mmr.MMR, volume string, start int64, body []byte) {
	end := start + int64(len(body)) + 8 // u32 length prefix + body + u32 CRC
	if len(body) > 1 && EntryType(body[0]) == EntryRecord {
		payload := body[1:]
		if _, un := binary.Uvarint(payload); un > 0 {
			m.Append(mmr.LeafHash(payload[un:], volume, uint64(start)), end)
			return
		}
	}
	m.Advance(end)
}

// AttachMMR wires an MMR into the writer: every subsequent append feeds
// it. The MMR must already cover the log exactly — its cursor has to sit
// at the current global end — or the attach is refused, because a gap
// would silently produce roots that disagree with the bytes on disk.
func (w *Writer) AttachMMR(m *mmr.MMR, volume string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	end := w.globalBase + w.size + int64(len(w.buf))
	if c := m.Cursor(); c != end {
		return fmt.Errorf("provlog: MMR covers %d log bytes but the log ends at %d; repair the log tail or rebuild", c, end)
	}
	w.mmr, w.mmrVol = m, volume
	return nil
}

// MMR returns the attached MMR, or nil.
func (w *Writer) MMR() *mmr.MMR {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.mmr
}

// GlobalSize returns the log's total byte length across rotations,
// including buffered entries — the offset the next frame will start at.
func (w *Writer) GlobalSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.globalBase + w.size + int64(len(w.buf))
}

// SyncTamper flushes and fsyncs the log, then snapshots the MMR under
// the same lock hold: the returned state, count and root cover exactly
// the durable bytes, never a buffered suffix that a crash could lose.
// The checkpointer signs the (count, root) pair into the manifest and
// persists the state after the manifest commits.
func (w *Writer) SyncTamper() (mmr.State, uint64, mmr.Hash, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.mmr == nil {
		return mmr.State{}, 0, mmr.Hash{}, errors.New("provlog: no MMR attached")
	}
	if err := w.flushLocked(); err != nil {
		return mmr.State{}, 0, mmr.Hash{}, err
	}
	if err := w.f.Sync(); err != nil {
		return mmr.State{}, 0, mmr.Hash{}, err
	}
	st := w.mmr.State()
	return st, w.mmr.Count(), w.mmr.Root(), nil
}

// Rehydrate upgrades a pruned attached MMR to full mode by rescanning
// the log. The bulk of the rescan runs without the writer lock; the
// final catch-up and swap happen under it, and the rebuilt range must
// agree with the resumed peaks — a disagreement means the peak file and
// the log tell different histories, which is exactly what tamper
// evidence exists to refuse.
func (w *Writer) Rehydrate() error {
	w.mu.Lock()
	if w.mmr == nil {
		w.mu.Unlock()
		return errors.New("provlog: no MMR attached")
	}
	if !w.mmr.Pruned() {
		w.mu.Unlock()
		return nil
	}
	vol := w.mmrVol
	w.mu.Unlock()

	m, err := RebuildMMR(w.fs, w.dir, vol)
	if err != nil {
		return err
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.flushLocked(); err != nil {
		return err
	}
	if err := catchUp(w.fs, w.dir, vol, m); err != nil {
		return err
	}
	end := w.globalBase + w.size
	if c := m.Cursor(); c != end {
		return fmt.Errorf("provlog: rebuilt MMR covers %d of %d log bytes; unparseable tail", c, end)
	}
	if m.Count() != w.mmr.Count() || m.Root() != w.mmr.Root() {
		return fmt.Errorf("provlog: log rescan disagrees with the resumed MMR peaks (%d vs %d leaves) — log or peak state has been altered",
			m.Count(), w.mmr.Count())
	}
	w.mmr = m
	return nil
}

// RebuildMMR derives a full-mode MMR by scanning every log file. A torn
// tail on the active log is tolerated (the cursor stops before it); a
// torn rotated log is corruption and fails the rebuild.
func RebuildMMR(fs vfs.FS, dir, volume string) (*mmr.MMR, error) {
	m := mmr.New()
	if err := catchUp(fs, dir, volume, m); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadMMR opens the log's MMR cheaply: resume in pruned mode from the
// peak file and hash only the frames past its cursor. Any problem with
// the peak file — missing, corrupt, or pointing past the log end — falls
// back to a full rebuild, never to a wrong answer.
func LoadMMR(fs vfs.FS, dir, volume string) (*mmr.MMR, error) {
	dir = vfs.Clean(dir)
	b, err := readFile(fs, vfs.Join(dir, MMRStateName))
	if err != nil {
		return RebuildMMR(fs, dir, volume)
	}
	st, err := mmr.DecodeState(b)
	if err != nil {
		return RebuildMMR(fs, dir, volume)
	}
	m, err := mmr.Resume(st)
	if err != nil {
		return RebuildMMR(fs, dir, volume)
	}
	if err := catchUp(fs, dir, volume, m); err != nil {
		return RebuildMMR(fs, dir, volume)
	}
	return m, nil
}

// SaveMMR persists a peak-file snapshot atomically (tmp + rename).
func SaveMMR(fs vfs.FS, dir string, st mmr.State) error {
	dir = vfs.Clean(dir)
	tmp := vfs.Join(dir, "tmp-"+MMRStateName)
	f, err := fs.Open(tmp, vfs.OCreate|vfs.ORdWr|vfs.OTrunc)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(st.Encode(), 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, vfs.Join(dir, MMRStateName))
}

// catchUp feeds every frame from m's cursor to the log end. The global
// cursor is mapped back to a file position by walking the files in
// ingest order and accumulating sizes; a cursor past the log end (a peak
// file from some other log, or a log that lost bytes) is an error.
func catchUp(fs vfs.FS, dir, volume string, m *mmr.MMR) error {
	dir = vfs.Clean(dir)
	files, err := LogFiles(fs, dir)
	if err != nil {
		return err
	}
	cursor := m.Cursor()
	base := int64(0)
	for i, path := range files {
		st, err := fs.Stat(path)
		if err != nil {
			return err
		}
		fileEnd := base + st.Size
		if cursor > fileEnd {
			base = fileEnd
			continue
		}
		gbase := base
		end, err := scanFramesFrom(fs, path, cursor-base, func(off int64, body []byte) error {
			feedFrame(m, volume, gbase+off, body)
			return nil
		})
		if errors.Is(err, ErrTorn) {
			if i == len(files)-1 {
				m.Advance(base + end)
				return nil // torn active tail: normal post-crash state
			}
			return fmt.Errorf("provlog: rotated log %s: %w", path, err)
		}
		if err != nil {
			return err
		}
		m.Advance(base + end)
		cursor = base + end
		base = fileEnd
	}
	if total := base; cursor > total {
		return fmt.Errorf("provlog: MMR cursor %d past the log end %d", cursor, total)
	}
	return nil
}

// TailFeeder drives a follower's MMR from the replicated byte stream.
// Chunks arrive by offset and may split frames arbitrarily; the feeder
// buffers the partial tail, hashes each completed record frame, and
// refuses gaps, corrupt frames and — via Poison, once the server detects
// a root divergence — everything after a fork.
type TailFeeder struct {
	mu       sync.Mutex
	m        *mmr.MMR
	volume   string
	cursor   int64  // global offset of the first byte in pending
	pending  []byte // partial frame bytes past cursor
	poisoned error
}

// NewTailFeeder wraps an MMR whose cursor sits at the durable log end;
// pending carries any partial trailing frame already on disk.
func NewTailFeeder(m *mmr.MMR, volume string, pending []byte) *TailFeeder {
	return &TailFeeder{
		m:       m,
		volume:  volume,
		cursor:  m.Cursor(),
		pending: append([]byte(nil), pending...),
	}
}

// LoadFeeder rebuilds a follower's full-mode MMR from its log and
// initializes the feeder, including the partial trailing frame a
// mid-frame replication chunk may have left behind.
func LoadFeeder(fs vfs.FS, dir, volume string) (*TailFeeder, error) {
	dir = vfs.Clean(dir)
	m, err := RebuildMMR(fs, dir, volume)
	if err != nil {
		return nil, err
	}
	// Any bytes past the MMR cursor are a partial frame at the very end
	// of the last file (catchUp rejects gaps anywhere else).
	var pending []byte
	files, err := LogFiles(fs, dir)
	if err != nil {
		return nil, err
	}
	total := int64(0)
	for _, path := range files {
		st, err := fs.Stat(path)
		if err != nil {
			return nil, err
		}
		total += st.Size
	}
	if cur := m.Cursor(); cur < total {
		if len(files) == 0 {
			return nil, fmt.Errorf("provlog: %d log bytes unaccounted for with no files", total-cur)
		}
		last := files[len(files)-1]
		f, err := fs.Open(last, vfs.ORdOnly)
		if err != nil {
			return nil, err
		}
		tail := total - cur
		if tail > f.Size() {
			f.Close()
			return nil, fmt.Errorf("provlog: torn bytes span a rotated log boundary")
		}
		pending = make([]byte, tail)
		if _, err := f.ReadAt(pending, f.Size()-tail); err != nil {
			f.Close()
			return nil, err
		}
		f.Close()
	}
	return NewTailFeeder(m, volume, pending), nil
}

// MMR returns the feeder's underlying range.
func (t *TailFeeder) MMR() *mmr.MMR { return t.m }

// RootAt answers the root over the first n leaves (the primary attaches
// its own answer to each chunk; comparing the two is the fork check).
func (t *TailFeeder) RootAt(n uint64) (mmr.Hash, error) { return t.m.RootAt(n) }

// Expected reports the global offset the next chunk must start at or
// before: everything through it has been fed. A chunk starting past it
// is a stream gap — the server lets the durable log refuse it so the
// primary backfills, rather than calling it a fork.
func (t *TailFeeder) Expected() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cursor + int64(len(t.pending))
}

// Poison permanently fails the feeder: after a detected fork the
// follower's in-memory range may already hold diverged leaves, so
// continuing to feed would hide the divergence.
func (t *TailFeeder) Poison(err error) {
	t.mu.Lock()
	t.poisoned = err
	t.mu.Unlock()
}

// Feed consumes one replicated chunk at global offset off. Replayed
// bytes (retransmissions after a reconnect) are skipped; a chunk past
// the expected offset is a gap error; frames whose CRC fails poison the
// feeder — the stream delivered bytes the primary never wrote.
func (t *TailFeeder) Feed(off int64, p []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.poisoned != nil {
		return t.poisoned
	}
	expected := t.cursor + int64(len(t.pending))
	end := off + int64(len(p))
	if end <= expected {
		return nil
	}
	if off > expected {
		return fmt.Errorf("provlog: feeder gap: chunk at %d but fed through %d", off, expected)
	}
	t.pending = append(t.pending, p[expected-off:]...)
	for {
		if len(t.pending) < 4 {
			return nil
		}
		n := int(binary.LittleEndian.Uint32(t.pending))
		if n < 1 {
			t.poisoned = fmt.Errorf("provlog: corrupt frame length at offset %d", t.cursor)
			return t.poisoned
		}
		if len(t.pending) < 4+n+4 {
			return nil
		}
		body := t.pending[4 : 4+n]
		sum := binary.LittleEndian.Uint32(t.pending[4+n:])
		if crc32.ChecksumIEEE(body) != sum {
			t.poisoned = fmt.Errorf("provlog: corrupt frame at offset %d", t.cursor)
			return t.poisoned
		}
		feedFrame(t.m, t.volume, t.cursor, body)
		t.cursor += int64(4 + n + 4)
		t.pending = t.pending[4+n+4:]
	}
}

func readFile(fs vfs.FS, path string) ([]byte, error) {
	f, err := fs.Open(path, vfs.ORdOnly)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b := make([]byte, f.Size())
	if len(b) == 0 {
		return b, nil
	}
	if _, err := f.ReadAt(b, 0); err != nil {
		return nil, err
	}
	return b, nil
}
