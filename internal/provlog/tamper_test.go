package provlog

import (
	"errors"
	"strings"
	"testing"

	"passv2/internal/mmr"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

func tamperRecord(i int) record.Record {
	return record.Record{
		Subject: pnode.Ref{PNode: pnode.PNode(i + 1), Version: 1},
		Attr:    record.AttrName,
		Value:   record.StringVal("file" + string(rune('a'+i%26))),
	}
}

// TestWriterFeedMatchesRebuild pins the core equivalence: the MMR fed
// live by the writer and the MMR rebuilt by scanning the log bytes must
// agree, including across rotations and non-record frames.
func TestWriterFeedMatchesRebuild(t *testing.T) {
	fs := vfs.NewMemFS("lower", nil)
	w, err := NewWriter(fs, "/log", 256) // small: force several rotations
	if err != nil {
		t.Fatal(err)
	}
	live := mmr.New()
	if err := w.AttachMMR(live, "vol"); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBeginTxn(7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := w.AppendRecord(0, tamperRecord(i)); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if err := w.AppendData(pnode.Ref{PNode: 1, Version: 1}, 0, []byte("xx")); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.AppendEndTxn(7); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if live.Count() != 40 {
		t.Fatalf("live MMR has %d leaves, want 40", live.Count())
	}
	rebuilt, err := RebuildMMR(fs, "/log", "vol")
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Root() != live.Root() || rebuilt.Count() != live.Count() {
		t.Fatal("rebuilt MMR disagrees with the live one")
	}
	if rebuilt.Cursor() != live.Cursor() {
		t.Fatalf("cursor mismatch: rebuilt %d live %d", rebuilt.Cursor(), live.Cursor())
	}
	// A different volume name yields a different history.
	other, err := RebuildMMR(fs, "/log", "vol2")
	if err != nil {
		t.Fatal(err)
	}
	if other.Root() == live.Root() {
		t.Fatal("volume name is not bound into the leaves")
	}
}

// TestWriterFeedWithBuffering checks the write-behind path: leaves are
// committed at append time (global offsets account for buffered bytes),
// and SyncTamper's snapshot covers exactly the durable prefix.
func TestWriterFeedWithBuffering(t *testing.T) {
	fs := vfs.NewMemFS("lower", nil)
	w, err := NewWriter(fs, "/log", 0)
	if err != nil {
		t.Fatal(err)
	}
	w.SetBuffer(1 << 20)
	live := mmr.New()
	if err := w.AttachMMR(live, "vol"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := w.AppendRecord(0, tamperRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, n, root, err := w.SyncTamper()
	if err != nil {
		t.Fatal(err)
	}
	if n != 25 || st.Count != 25 {
		t.Fatalf("synced %d/%d leaves, want 25", n, st.Count)
	}
	rebuilt, err := RebuildMMR(fs, "/log", "vol")
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Root() != root {
		t.Fatal("rebuild after sync disagrees with the synced root")
	}
}

// TestSaveLoadResumeRehydrate is the full lifecycle: run, checkpoint the
// peak state, reopen pruned (no rehash), keep appending, then rehydrate
// to full for proofs.
func TestSaveLoadResumeRehydrate(t *testing.T) {
	fs := vfs.NewMemFS("lower", nil)
	w, err := NewWriter(fs, "/log", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AttachMMR(mmr.New(), "vol"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := w.AppendRecord(0, tamperRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, _, _, err := w.SyncTamper()
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveMMR(fs, "/log", st); err != nil {
		t.Fatal(err)
	}

	// "Restart": load resumes pruned at the saved base.
	w2, err := NewWriter(fs, "/log", 0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := LoadMMR(fs, "/log", "vol")
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Pruned() {
		t.Fatal("LoadMMR with a valid peak file should resume pruned")
	}
	if err := w2.AttachMMR(m2, "vol"); err != nil {
		t.Fatal(err)
	}
	for i := 20; i < 35; i++ {
		if err := w2.AppendRecord(0, tamperRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	full, err := RebuildMMR(fs, "/log", "vol")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Root() != full.Root() {
		t.Fatal("pruned resume diverged from a full rebuild")
	}
	if _, err := m2.Prove(3); !errors.Is(err, mmr.ErrPruned) {
		t.Fatalf("pruned proof: %v, want ErrPruned", err)
	}
	if err := w2.Rehydrate(); err != nil {
		t.Fatal(err)
	}
	hydrated := w2.MMR()
	if hydrated.Pruned() {
		t.Fatal("rehydrate left the MMR pruned")
	}
	if hydrated.Root() != full.Root() {
		t.Fatal("rehydrate changed the root")
	}
	p, err := hydrated.Prove(3)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := hydrated.Leaf(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := mmr.VerifyInclusion(hydrated.Root(), leaf, p); err != nil {
		t.Fatal(err)
	}
	if err := w2.Rehydrate(); err != nil {
		t.Fatal(err) // idempotent
	}
}

// TestLoadMMRFallsBackOnBadState: corrupt or stale peak files must fall
// back to a full rebuild, never resume wrong.
func TestLoadMMRFallsBackOnBadState(t *testing.T) {
	fs := vfs.NewMemFS("lower", nil)
	w, err := NewWriter(fs, "/log", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AttachMMR(mmr.New(), "vol"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.AppendRecord(0, tamperRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, _, root, err := w.SyncTamper()
	if err != nil {
		t.Fatal(err)
	}

	// No state file at all.
	m, err := LoadMMR(fs, "/log", "vol")
	if err != nil || m.Pruned() || m.Root() != root {
		t.Fatalf("missing state: %v pruned=%v", err, m.Pruned())
	}
	// Corrupt state file.
	if err := SaveMMR(fs, "/log", st); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/log/"+MMRStateName, vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 12); err != nil {
		t.Fatal(err)
	}
	f.Close()
	m, err = LoadMMR(fs, "/log", "vol")
	if err != nil || m.Pruned() || m.Root() != root {
		t.Fatalf("corrupt state: %v pruned=%v", err, m.Pruned())
	}
	// State whose cursor points past the log end (state stolen from a
	// longer log).
	longer := st
	longer.Cursor += 1000
	if err := SaveMMR(fs, "/log", longer); err != nil {
		t.Fatal(err)
	}
	m, err = LoadMMR(fs, "/log", "vol")
	if err != nil || m.Pruned() || m.Root() != root {
		t.Fatalf("stale state: %v pruned=%v", err, m.Pruned())
	}
}

// TestRehydrateDetectsDoctoredState: a peak file whose peaks do not
// match the log is accepted at resume (it cannot be checked without
// rehashing) but must be refused at rehydrate time.
func TestRehydrateDetectsDoctoredState(t *testing.T) {
	fs := vfs.NewMemFS("lower", nil)
	w, err := NewWriter(fs, "/log", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AttachMMR(mmr.New(), "vol"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := w.AppendRecord(0, tamperRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	st, _, _, err := w.SyncTamper()
	if err != nil {
		t.Fatal(err)
	}
	st.Peaks[0][0] ^= 1 // forge a peak; re-encode keeps the CRC valid
	if err := SaveMMR(fs, "/log", st); err != nil {
		t.Fatal(err)
	}

	w2, err := NewWriter(fs, "/log", 0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := LoadMMR(fs, "/log", "vol")
	if err != nil {
		t.Fatal(err)
	}
	if !m2.Pruned() {
		t.Skip("load fell back to rebuild; nothing to detect")
	}
	if err := w2.AttachMMR(m2, "vol"); err != nil {
		t.Fatal(err)
	}
	err = w2.Rehydrate()
	if err == nil {
		t.Fatal("rehydrate accepted a doctored peak file")
	}
	if !strings.Contains(err.Error(), "altered") {
		t.Fatalf("unexpected rehydrate error: %v", err)
	}
}

func TestAttachMMRRefusesGap(t *testing.T) {
	fs := vfs.NewMemFS("lower", nil)
	w, err := NewWriter(fs, "/log", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendRecord(0, tamperRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.AttachMMR(mmr.New(), "vol"); err == nil {
		t.Fatal("attach accepted an MMR that does not cover the log")
	}
}

// TestTailFeeder exercises the follower path: chunks that split frames,
// retransmitted chunks, gaps and corruption.
func TestTailFeeder(t *testing.T) {
	// Build a reference log to get realistic frame bytes.
	fs := vfs.NewMemFS("lower", nil)
	w, err := NewWriter(fs, "/log", 0)
	if err != nil {
		t.Fatal(err)
	}
	live := mmr.New()
	if err := w.AttachMMR(live, "vol"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := w.AppendRecord(0, tamperRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	f, err := fs.Open("/log/"+CurrentName, vfs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, f.Size())
	if _, err := f.ReadAt(raw, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	feeder := NewTailFeeder(mmr.New(), "vol", nil)
	// Feed in awkward chunk sizes, with a retransmission in the middle.
	for off := 0; off < len(raw); {
		n := 7 + off%13
		if off+n > len(raw) {
			n = len(raw) - off
		}
		if err := feeder.Feed(int64(off), raw[off:off+n]); err != nil {
			t.Fatal(err)
		}
		if off > 20 {
			if err := feeder.Feed(0, raw[:off]); err != nil {
				t.Fatal(err) // full replay must be a no-op
			}
		}
		off += n
	}
	if feeder.MMR().Root() != live.Root() {
		t.Fatal("feeder MMR diverged from the writer MMR")
	}
	// A gap is refused without poisoning.
	if err := feeder.Feed(int64(len(raw)+100), []byte{1, 2, 3}); err == nil {
		t.Fatal("gap accepted")
	}
	if err := feeder.Feed(int64(len(raw)), nil); err != nil {
		t.Fatalf("feeder wedged after a gap refusal: %v", err)
	}
	// Corrupt bytes (a complete frame with a wrong CRC) poison it
	// permanently.
	bad := []byte{4, 0, 0, 0, 1, 2, 3, 4, 0, 0, 0, 0}
	if err := feeder.Feed(int64(len(raw)), bad); err == nil {
		t.Fatal("corrupt frame accepted")
	}
	if err := feeder.Feed(int64(len(raw)+len(bad)), raw[:8]); err == nil {
		t.Fatal("poisoned feeder kept accepting")
	}
}

// TestLoadFeederWithPartialTail: a follower killed mid-frame reloads
// with the partial bytes pending and finishes the frame on the next
// chunk.
func TestLoadFeederWithPartialTail(t *testing.T) {
	fs := vfs.NewMemFS("lower", nil)
	w, err := NewWriter(fs, "/log", 0)
	if err != nil {
		t.Fatal(err)
	}
	live := mmr.New()
	if err := w.AttachMMR(live, "vol"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.AppendRecord(0, tamperRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	f, err := fs.Open("/log/"+CurrentName, vfs.ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, f.Size())
	if _, err := f.ReadAt(raw, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// A follower log holding everything plus half a frame.
	ffs := vfs.NewMemFS("follower", nil)
	if err := ffs.MkdirAll("/flog"); err != nil {
		t.Fatal(err)
	}
	cut := len(raw) - 9
	fl, err := ffs.Open("/flog/"+CurrentName, vfs.OCreate|vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.WriteAt(raw[:cut], 0); err != nil {
		t.Fatal(err)
	}
	fl.Close()

	feeder, err := LoadFeeder(ffs, "/flog", "vol")
	if err != nil {
		t.Fatal(err)
	}
	if feeder.MMR().Count() != 9 {
		t.Fatalf("feeder resumed with %d leaves, want 9", feeder.MMR().Count())
	}
	if err := feeder.Feed(int64(cut), raw[cut:]); err != nil {
		t.Fatal(err)
	}
	if feeder.MMR().Root() != live.Root() {
		t.Fatal("feeder diverged after finishing the partial frame")
	}
}
