// Package pyprov implements Provenance-Aware Python (§6.4): a set of
// wrappers that track provenance in script applications. The paper's
// colleagues wrapped Python objects, modules and output files so that
// method invocations, their inputs, and their outputs become provenance
// objects; this reproduction provides the same wrapper architecture over a
// small script runtime (functions as Go closures, values as tagged data),
// which preserves the design point that matters: the wrappers capture
// function-level data flow, while anything flowing through unwrapped
// built-in operators escapes them — the limitation §6.5 reports.
//
// For every wrapped object the runtime records TYPE and NAME; for every
// invocation it issues pass_write calls with INPUT records describing the
// dependencies between each input and the invocation, and between the
// invocation and each of its outputs.
package pyprov

import (
	"fmt"

	"passv2/internal/dpapi"
	"passv2/internal/kernel"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// Value is a runtime value with optional provenance identity. Values
// produced by wrapped invocations or read from files carry a Ref; values
// produced by unwrapped computation do not (that is the wrapper gap).
type Value struct {
	Data interface{}
	Ref  pnode.Ref
}

// Tainted reports whether the value carries provenance.
func (v Value) Tainted() bool { return v.Ref.IsValid() }

// Runtime is one provenance-aware script interpreter instance bound to a
// kernel process.
type Runtime struct {
	proc *kernel.Process
	hint string // PASS volume hint for script objects
}

// New creates a runtime. hint names the volume for wrapper objects.
func New(proc *kernel.Process, hint string) *Runtime {
	return &Runtime{proc: proc, hint: hint}
}

// Proc exposes the underlying process.
func (rt *Runtime) Proc() *kernel.Process { return rt.proc }

// Function is a wrapped callable.
type Function struct {
	rt   *Runtime
	name string
	obj  dpapi.Object
	fn   func(call *Invocation, args []Value) ([]Value, error)
}

// Wrap registers fn as a provenance-aware function: a FUNCTION object is
// created for it, and every call produces an INVOCATION object linked to
// the function, its inputs, and its outputs.
func (rt *Runtime) Wrap(name string, fn func(call *Invocation, args []Value) ([]Value, error)) (*Function, error) {
	obj, err := rt.proc.PassMkobj(rt.hint)
	if err != nil {
		return nil, fmt.Errorf("pyprov: wrap %s: %w", name, err)
	}
	ref := obj.Ref()
	if err := dpapi.Disclose(obj,
		record.New(ref, record.AttrType, record.StringVal(record.TypeFunction)),
		record.New(ref, record.AttrName, record.StringVal(name)),
	); err != nil {
		return nil, err
	}
	return &Function{rt: rt, name: name, obj: obj, fn: fn}, nil
}

// Name returns the function's name.
func (f *Function) Name() string { return f.name }

// Ref returns the FUNCTION object's identity.
func (f *Function) Ref() pnode.Ref { return f.obj.Ref() }

// Invocation is one call of a wrapped function: itself a provenance
// object, so process-validation queries (§3.3) can ask "which outputs
// descend from an invocation of this routine?".
type Invocation struct {
	rt  *Runtime
	fn  *Function
	obj dpapi.Object
}

// Ref returns the invocation's identity.
func (c *Invocation) Ref() pnode.Ref { return c.obj.Ref() }

// Runtime returns the owning runtime.
func (c *Invocation) Runtime() *Runtime { return c.rt }

// Call invokes the wrapped function: it creates the INVOCATION object,
// records invocation←function and invocation←each-tainted-arg, runs the
// body, then records each tainted output←invocation.
func (f *Function) Call(args ...Value) ([]Value, error) {
	return f.callFrom(nil, args...)
}

// Call invokes another wrapped function from inside this invocation: the
// inner invocation additionally descends from the outer one (the call
// stack becomes ancestry), and the outer invocation picks up dependencies
// on the inner call's tainted results — so a provenance-aware application
// calling a provenance-aware library yields one connected chain (§5.2's
// stacked-layers case).
func (c *Invocation) Call(f *Function, args ...Value) ([]Value, error) {
	outs, err := f.callFrom(c, args...)
	if err != nil {
		return nil, err
	}
	var recs []record.Record
	for _, o := range outs {
		if o.Tainted() {
			recs = append(recs, record.Input(c.obj.Ref(), o.Ref))
		}
	}
	if err := dpapi.Disclose(c.obj, recs...); err != nil {
		return nil, err
	}
	return outs, nil
}

func (f *Function) callFrom(parent *Invocation, args ...Value) ([]Value, error) {
	obj, err := f.rt.proc.PassMkobj(f.rt.hint)
	if err != nil {
		return nil, err
	}
	inv := &Invocation{rt: f.rt, fn: f, obj: obj}
	iref := obj.Ref()
	recs := []record.Record{
		record.New(iref, record.AttrType, record.StringVal(record.TypeInvoke)),
		record.New(iref, record.AttrName, record.StringVal(f.name)),
		record.Input(iref, f.obj.Ref()),
	}
	if parent != nil {
		recs = append(recs, record.Input(iref, parent.Ref()))
	}
	for _, a := range args {
		if a.Tainted() {
			recs = append(recs, record.Input(iref, a.Ref))
		}
	}
	if err := dpapi.Disclose(obj, recs...); err != nil {
		return nil, err
	}
	outs, err := f.fn(inv, args)
	if err != nil {
		return nil, fmt.Errorf("pyprov: %s: %w", f.name, err)
	}
	// Outputs descend from the invocation. Values that already carry a
	// ref (e.g. documents passed through) keep their identity. The tag is
	// the invocation's identity at return time: nested calls may have
	// frozen it (cycle avoidance) since creation, and ancestry must start
	// from the version whose dependency set includes those calls.
	cur := obj.Ref()
	for i := range outs {
		if !outs[i].Tainted() {
			outs[i].Ref = cur
		}
	}
	return outs, nil
}

// ReadFile loads a file through pass_read, returning a Value whose Ref is
// the exact file version read. The script sees its data; the provenance
// layer sees the dependency.
func (rt *Runtime) ReadFile(path string) (Value, error) {
	p := rt.proc
	fd, err := p.Open(path, vfs.ORdOnly)
	if err != nil {
		return Value{}, err
	}
	defer p.Close(fd)
	st, err := p.Stat(path)
	if err != nil {
		return Value{}, err
	}
	buf := make([]byte, st.Size)
	var ref pnode.Ref
	total := 0
	passAware := true
	for total < len(buf) {
		n, r, err := p.PassReadFd(fd, buf[total:])
		if err != nil {
			// Non-PASS volume: plain read, no identity at this layer.
			passAware = false
			if n, err = p.Read(fd, buf[total:]); err != nil {
				return Value{}, err
			}
			if n == 0 {
				break
			}
			total += n
			continue
		}
		ref = r
		if n == 0 {
			break
		}
		total += n
	}
	if !passAware {
		return Value{Data: buf[:total]}, nil
	}
	return Value{Data: buf[:total], Ref: ref}, nil
}

// WriteFile writes data to path with INPUT records for every tainted
// dependency (the invocation that computed it, the documents used).
func (rt *Runtime) WriteFile(path string, data []byte, deps ...Value) error {
	p := rt.proc
	fd, err := p.Open(path, vfs.OCreate|vfs.OTrunc|vfs.ORdWr)
	if err != nil {
		return err
	}
	defer p.Close(fd)
	kfd, err := p.FDGet(fd)
	if err != nil {
		return err
	}
	if pf := kfd.PassFile(); pf != nil {
		b := &record.Bundle{}
		for _, d := range deps {
			if d.Tainted() {
				b.Add(record.Input(pf.Ref(), d.Ref))
			}
		}
		_, err = p.PassWriteFd(fd, data, b)
		return err
	}
	_, err = p.Write(fd, data)
	return err
}

// Builtin applies an UNWRAPPED operation: data flows but provenance does
// not — the exact gap the paper discovered ("we lost provenance across
// built-in operators", §6.5). Exposed so tests and the ablation benches
// can demonstrate the difference between a provenance-aware application
// and a provenance-aware runtime.
func Builtin(fn func(args []Value) []Value, args ...Value) []Value {
	outs := fn(args)
	for i := range outs {
		outs[i].Ref = pnode.Ref{}
	}
	return outs
}
