package pyprov

import (
	"strings"
	"testing"

	"passv2/internal/dpapi/dpapitest"
	"passv2/internal/kernel"
	"passv2/internal/lasagna"
	"passv2/internal/observer"
	"passv2/internal/passd"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// remoteRig is newRig plus a handle on the observer, so the test can
// stack the machine's phantom objects on a remote daemon.
type remoteRig struct {
	k *kernel.Kernel
	w *waldo.Waldo
	o *observer.Observer
}

func newRemoteRig(t *testing.T) *remoteRig {
	t.Helper()
	k := kernel.New(&vfs.Clock{})
	k.Mount("/", vfs.NewMemFS("root", nil))
	vol, err := lasagna.New("pass0", lasagna.Config{Lower: vfs.NewMemFS("lower", nil), VolumeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	k.Mount("/lab", vol)
	o := observer.New(k)
	o.RegisterVolume(vol)
	w := waldo.New()
	w.Attach(vol)
	return &remoteRig{k: k, w: w, o: o}
}

// runScript executes a deterministic provenance-aware script: read an
// input file, run it through a wrapped function that itself calls a
// wrapped library function (the §5.2 stacked-application case — the
// nested invocation's result flows back into the outer invocation's
// dependency set, exercising cycle-avoidance freezes), then persist the
// result with its dependency chain.
func runScript(t *testing.T, r *remoteRig) {
	t.Helper()
	p := r.k.Spawn(nil, "python", []string{"python", "pipeline.py"}, nil)
	rt := New(p, "/lab")

	fd, err := p.Open("/lab/in.csv", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, []byte("3,1,2")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(fd); err != nil {
		t.Fatal(err)
	}

	sortvals, err := rt.Wrap("sortvals", func(call *Invocation, args []Value) ([]Value, error) {
		return []Value{{Data: "1,2,3"}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	analyze, err := rt.Wrap("analyze", func(call *Invocation, args []Value) ([]Value, error) {
		sorted, err := call.Call(sortvals, args[0])
		if err != nil {
			return nil, err
		}
		return []Value{{Data: "max=" + sorted[0].Data.(string)}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	in, err := rt.ReadFile("/lab/in.csv")
	if err != nil {
		t.Fatal(err)
	}
	outs, err := analyze.Call(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.WriteFile("/lab/report.txt", []byte(outs[0].Data.(string)), outs[0], in); err != nil {
		t.Fatal(err)
	}
	if err := r.w.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestRuntimeRemoteEquivalence: the unmodified provenance-aware Python
// runtime records through remote DPAPI objects, and the resulting graph —
// machine database plus daemon database — is byte-identical to the
// in-process run's.
func TestRuntimeRemoteEquivalence(t *testing.T) {
	local := newRemoteRig(t)
	runScript(t, local)
	want := dpapitest.CanonicalGraph(local.w.DB)

	remote := newRemoteRig(t)
	serverW := waldo.New()
	srv, err := passd.Serve(serverW, passd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := passd.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	remote.o.SetPhantomLayer(c)
	runScript(t, remote)
	got := dpapitest.CanonicalGraph(remote.w.DB, serverW.DB)

	if got != want {
		t.Fatalf("remote-layered provenance graph differs from in-process run:\n--- in-process\n%s\n--- remote\n%s", want, got)
	}
	// "@v2" pins the nested call's cycle-avoidance freeze: the outer
	// invocation is versioned when the inner result joins its dependency
	// set, and the remote layer must reproduce that exactly.
	for _, needle := range []string{"analyze", "sortvals", "/lab/report.txt", "INVOCATION", "@v2"} {
		if !strings.Contains(want, needle) {
			t.Fatalf("graph misses %q:\n%s", needle, want)
		}
	}
}
