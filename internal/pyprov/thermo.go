package pyprov

import (
	"encoding/xml"
	"fmt"

	"passv2/internal/vfs"
)

// This file implements the Iowa State Thermography Research Group
// application from §3.3: ~400 experiments on 60 specimens produced XML
// experiment logs relating crack heating to vibrational stress; a Python
// script plots crack heating as a function of crack length for two
// classifications of vibrational stress. The script reads ALL the XML
// files to decide which to use — which is why plain PASS reports the plot
// as descending from every file, and why the layered PA-Python answer
// (only the documents actually used) is the interesting one.

// ExperimentLog is one data-acquisition XML file.
type ExperimentLog struct {
	XMLName     xml.Name `xml:"experiment"`
	Specimen    string   `xml:"specimen,attr"`
	CrackLength float64  `xml:"crackLength"`
	Stress      float64  `xml:"stress"`
	Heating     float64  `xml:"heating"`
	Class       string   `xml:"classification"`
}

// GenerateLogs writes n experiment logs under dir through the runtime's
// process (so the files have system-level provenance). Experiments
// alternate between "high" and "low" stress classifications.
func GenerateLogs(rt *Runtime, dir string, n int) error {
	p := rt.Proc()
	if err := p.MkdirAll(dir); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		class := "low"
		if i%2 == 0 {
			class = "high"
		}
		log := ExperimentLog{
			Specimen:    fmt.Sprintf("S%03d", i%60),
			CrackLength: 1.0 + float64(i%37)*0.13,
			Stress:      80 + float64(i%11)*4.5,
			Heating:     0.2 + float64(i%23)*0.011,
			Class:       class,
		}
		body, err := xml.MarshalIndent(log, "", "  ")
		if err != nil {
			return err
		}
		path := fmt.Sprintf("%s/exp%03d.xml", dir, i)
		fd, err := p.Open(path, vfs.OCreate|vfs.OTrunc|vfs.ORdWr)
		if err != nil {
			return err
		}
		if _, err := p.Write(fd, body); err != nil {
			p.Close(fd)
			return err
		}
		p.Close(fd)
	}
	return nil
}

// AnalysisResult reports what the plot script did.
type AnalysisResult struct {
	PlotPath  string
	TotalRead int
	Used      int
}

// AnalyzeCrackHeating is the plot script: it reads every XML log in dir,
// uses only those whose classification matches class, estimates crack
// heating with a wrapped calculation routine, and writes a plot whose
// provenance names exactly the documents used.
//
// calcBuggy simulates the upgraded-library bug of the process-validation
// use case: when true, the estimate routine miscomputes, and the question
// "which results descend from an invocation of the buggy routine?" is
// answerable from provenance.
func AnalyzeCrackHeating(rt *Runtime, dir, plotPath, class string, calcBuggy bool) (*AnalysisResult, error) {
	p := rt.Proc()

	estimate, err := rt.Wrap("estimate_heating", func(call *Invocation, args []Value) ([]Value, error) {
		doc := args[0].Data.(*ExperimentLog)
		v := doc.Heating * doc.Stress / 100
		if calcBuggy {
			v *= 3.7 // the upgraded library's miscalculation
		}
		call.rt.Proc().Compute(int64(1000))
		return []Value{{Data: v}}, nil
	})
	if err != nil {
		return nil, err
	}
	plot, err := rt.Wrap("plot_crack_heating", func(call *Invocation, args []Value) ([]Value, error) {
		var body []byte
		for _, a := range args {
			body = append(body, []byte(fmt.Sprintf("%v\n", a.Data))...)
		}
		call.rt.Proc().Compute(int64(len(args)) * 500)
		return []Value{{Data: body}}, nil
	})
	if err != nil {
		return nil, err
	}

	ents, err := p.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	res := &AnalysisResult{PlotPath: plotPath}
	var points []Value
	var used []Value
	for _, e := range ents {
		if e.IsDir {
			continue
		}
		// The script reads EVERY file — PASS alone sees all of them as
		// plot inputs.
		val, err := rt.ReadFile(dir + "/" + e.Name)
		if err != nil {
			return nil, err
		}
		res.TotalRead++
		var doc ExperimentLog
		if err := xml.Unmarshal(val.Data.([]byte), &doc); err != nil {
			continue
		}
		if doc.Class != class {
			continue // read but not used
		}
		res.Used++
		docVal := Value{Data: &doc, Ref: val.Ref}
		pt, err := estimate.Call(docVal)
		if err != nil {
			return nil, err
		}
		points = append(points, pt[0])
		used = append(used, docVal)
	}
	out, err := plot.Call(points...)
	if err != nil {
		return nil, err
	}
	deps := append([]Value{out[0]}, used...)
	if err := rt.WriteFile(plotPath, out[0].Data.([]byte), deps...); err != nil {
		return nil, err
	}
	return res, nil
}
