package record

import (
	"errors"
	"io"
	"testing"
)

// TestDecodeValueRoundTrip is the contract Waldo's database rows rely on:
// a bare AppendValue encoding decodes back through DecodeValue, with the
// exact byte count consumed, for every value kind.
func TestDecodeValueRoundTrip(t *testing.T) {
	vals := []Value{
		Int(0), Int(-7), Int(1 << 60),
		StringVal(""), StringVal("π and \x00 bytes"),
		Bool(true), Bool(false),
		Bytes(nil), Bytes([]byte{0xff, 0x00, 0x01}),
		Ref(ref(1, 1)), Ref(ref(1<<40, 9)),
	}
	for _, v := range vals {
		enc := AppendValue(nil, v)
		got, n, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip: got %v want %v", got, v)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d bytes for %v", n, len(enc), v)
		}
	}
}

// TestDecodeValueTrailingBytes checks consumption stops at the value
// boundary, which is what lets values be spliced into larger buffers.
func TestDecodeValueTrailingBytes(t *testing.T) {
	enc := AppendValue(nil, StringVal("x"))
	enc = append(enc, 0xAA, 0xBB)
	v, n, err := DecodeValue(enc)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v.AsString(); s != "x" {
		t.Fatalf("got %v", v)
	}
	if n != len(enc)-2 {
		t.Fatalf("consumed %d, want %d", n, len(enc)-2)
	}
}

// TestDecodeValueCorrupt rejects truncated and malformed encodings
// without panicking.
func TestDecodeValueCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(KindInt)},            // varint missing
		{byte(KindString), 5, 'a'}, // short string
		{byte(KindBool)},           // payload missing
		{byte(KindBool), 7},        // bad bool
		{byte(KindRef), 1, 2, 3},   // short ref
		{99},                       // unknown kind
		{byte(KindBytes), 0xff, 0xff, 0xff, 0xff, 0x7f}, // huge length
	}
	for i, c := range cases {
		if _, _, err := DecodeValue(c); err == nil {
			t.Fatalf("case %d: corrupt input decoded without error", i)
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("case %d: unexpected error %v", i, err)
		}
	}
}
