package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"passv2/internal/pnode"
)

// Binary encoding of records and bundles. The same encoding is used in the
// Lasagna on-disk log and on the PA-NFS wire, which is what lets a client
// analyzer stack directly on a server analyzer (§6.1.1: "the input and
// output data representations must be the same").
//
// Layout (all integers little-endian, strings/bytes length-prefixed with
// uvarint):
//
//	record  = subjectPnode:u64 subjectVersion:u32 attr:str kind:u8 payload
//	payload = int:varint | str | bool:u8 | bytes | ref(u64 u32)
//	bundle  = count:uvarint record*

var (
	// ErrCorrupt reports undecodable record bytes.
	ErrCorrupt = errors.New("record: corrupt encoding")
	// errTooLarge guards length prefixes against hostile input.
	errTooLarge = fmt.Errorf("%w: length prefix too large", ErrCorrupt)
)

// maxBlob bounds any single string/byte field (16 MiB).
const maxBlob = 16 << 20

// AppendValue appends the binary encoding of v to dst.
func AppendValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.kind))
	switch v.kind {
	case KindInt:
		dst = binary.AppendVarint(dst, v.i)
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.s)))
		dst = append(dst, v.s...)
	case KindBool:
		if v.i != 0 {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindBytes:
		dst = binary.AppendUvarint(dst, uint64(len(v.b)))
		dst = append(dst, v.b...)
	case KindRef:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.r.PNode))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v.r.Version))
	}
	return dst
}

// AppendRecord appends the binary encoding of r to dst.
func AppendRecord(dst []byte, r Record) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.Subject.PNode))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.Subject.Version))
	dst = binary.AppendUvarint(dst, uint64(len(r.Attr)))
	dst = append(dst, r.Attr...)
	return AppendValue(dst, r.Value)
}

// AppendBundle appends the binary encoding of b to dst. A nil bundle
// encodes as a zero-count bundle.
func AppendBundle(dst []byte, b *Bundle) []byte {
	dst = binary.AppendUvarint(dst, uint64(b.Len()))
	if b != nil {
		for _, r := range b.Records {
			dst = AppendRecord(dst, r)
		}
	}
	return dst
}

// EncodeBundle returns the binary encoding of b.
func EncodeBundle(b *Bundle) []byte { return AppendBundle(nil, b) }

// decoder walks an encoded byte slice.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) u8() (byte, error) {
	if d.remaining() < 1 {
		return 0, io.ErrUnexpectedEOF
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) u32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	d.off += n
	return v, nil
}

func (d *decoder) blob() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxBlob {
		return nil, errTooLarge
	}
	if uint64(d.remaining()) < n {
		return nil, io.ErrUnexpectedEOF
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b, nil
}

func (d *decoder) value() (Value, error) {
	k, err := d.u8()
	if err != nil {
		return Value{}, err
	}
	switch Kind(k) {
	case KindInt:
		i, err := d.varint()
		if err != nil {
			return Value{}, err
		}
		return Int(i), nil
	case KindString:
		b, err := d.blob()
		if err != nil {
			return Value{}, err
		}
		return StringVal(string(b)), nil
	case KindBool:
		b, err := d.u8()
		if err != nil {
			return Value{}, err
		}
		if b > 1 {
			return Value{}, ErrCorrupt
		}
		return Bool(b == 1), nil
	case KindBytes:
		b, err := d.blob()
		if err != nil {
			return Value{}, err
		}
		cp := make([]byte, len(b))
		copy(cp, b)
		return Bytes(cp), nil
	case KindRef:
		pn, err := d.u64()
		if err != nil {
			return Value{}, err
		}
		ver, err := d.u32()
		if err != nil {
			return Value{}, err
		}
		return Ref(pnode.Ref{PNode: pnode.PNode(pn), Version: pnode.Version(ver)}), nil
	default:
		return Value{}, fmt.Errorf("%w: unknown value kind %d", ErrCorrupt, k)
	}
}

func (d *decoder) record() (Record, error) {
	pn, err := d.u64()
	if err != nil {
		return Record{}, err
	}
	ver, err := d.u32()
	if err != nil {
		return Record{}, err
	}
	attr, err := d.blob()
	if err != nil {
		return Record{}, err
	}
	val, err := d.value()
	if err != nil {
		return Record{}, err
	}
	return Record{
		Subject: pnode.Ref{PNode: pnode.PNode(pn), Version: pnode.Version(ver)},
		Attr:    Attr(attr),
		Value:   val,
	}, nil
}

// DecodeBundle decodes a bundle from buf, returning the bundle and the
// number of bytes consumed.
func DecodeBundle(buf []byte) (*Bundle, int, error) {
	d := &decoder{buf: buf}
	n, err := d.uvarint()
	if err != nil {
		return nil, 0, err
	}
	if n > math.MaxInt32 {
		return nil, 0, errTooLarge
	}
	b := &Bundle{Records: make([]Record, 0, minInt(int(n), 1024))}
	for i := uint64(0); i < n; i++ {
		r, err := d.record()
		if err != nil {
			return nil, 0, err
		}
		b.Records = append(b.Records, r)
	}
	return b, d.off, nil
}

// DecodeValue decodes one value (the AppendValue encoding) from buf,
// returning it and the number of bytes consumed. Waldo stores bare encoded
// values in its database rows; this decodes them without reframing a whole
// record.
func DecodeValue(buf []byte) (Value, int, error) {
	d := &decoder{buf: buf}
	v, err := d.value()
	if err != nil {
		return Value{}, 0, err
	}
	return v, d.off, nil
}

// DecodeRecord decodes one record from buf, returning it and the number of
// bytes consumed.
func DecodeRecord(buf []byte) (Record, int, error) {
	d := &decoder{buf: buf}
	r, err := d.record()
	if err != nil {
		return Record{}, 0, err
	}
	return r, d.off, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
