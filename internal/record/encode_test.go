package record

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"passv2/internal/pnode"
)

func TestEncodeDecodeRecordRoundTrip(t *testing.T) {
	recs := []Record{
		Input(ref(3, 1), ref(2, 4)),
		New(ref(1, 1), AttrName, StringVal("/data/in.xml")),
		New(ref(1, 2), AttrType, StringVal(TypeProc)),
		New(ref(7, 9), Attr("COUNT"), Int(-123456789)),
		New(ref(7, 9), Attr("FLAG"), Bool(true)),
		New(ref(7, 9), Attr("FLAG"), Bool(false)),
		New(ref(8, 1), Attr("BLOB"), Bytes([]byte{0, 255, 1, 2})),
		New(ref(8, 1), Attr("EMPTY"), Bytes(nil)),
		New(ref(8, 1), Attr(""), StringVal("")),
	}
	for _, r := range recs {
		enc := AppendRecord(nil, r)
		got, n, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", r, err)
		}
		if n != len(enc) {
			t.Fatalf("decode %v consumed %d of %d bytes", r, n, len(enc))
		}
		if !got.Equal(r) {
			t.Fatalf("round trip: got %v, want %v", got, r)
		}
	}
}

func TestEncodeDecodeBundleRoundTrip(t *testing.T) {
	b := NewBundle(
		Input(ref(3, 1), ref(2, 4)),
		New(ref(3, 1), AttrName, StringVal("x")),
		New(ref(4, 1), AttrArgv, StringVal("cc -O2 main.c")),
	)
	enc := EncodeBundle(b)
	got, n, err := DecodeBundle(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d", n, len(enc))
	}
	if len(got.Records) != len(b.Records) {
		t.Fatalf("got %d records, want %d", len(got.Records), len(b.Records))
	}
	for i := range got.Records {
		if !got.Records[i].Equal(b.Records[i]) {
			t.Fatalf("record %d differs: %v vs %v", i, got.Records[i], b.Records[i])
		}
	}
}

func TestDecodeEmptyAndNilBundle(t *testing.T) {
	enc := EncodeBundle(nil)
	b, _, err := DecodeBundle(enc)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil bundle decoded to %d records", b.Len())
	}
}

func TestDecodeTruncated(t *testing.T) {
	b := NewBundle(
		Input(ref(3, 1), ref(2, 4)),
		New(ref(3, 1), AttrName, StringVal("some-name-here")),
	)
	enc := EncodeBundle(b)
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := DecodeBundle(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestDecodeGarbageDoesNotPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		DecodeBundle(buf) // must not panic; errors are fine
		DecodeRecord(buf)
	}
}

func TestDecodeRejectsHugeLengthPrefix(t *testing.T) {
	// A bundle claiming 2^40 records must fail cleanly, not OOM.
	var enc []byte
	enc = append(enc, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01) // uvarint 2^42
	if _, _, err := DecodeBundle(enc); err == nil {
		t.Fatal("huge count accepted")
	}
}

// randomValue builds an arbitrary Value from fuzz inputs.
func randomValue(which uint8, i int64, s string, bs []byte, p uint64, v uint32) Value {
	switch which % 5 {
	case 0:
		return Int(i)
	case 1:
		return StringVal(s)
	case 2:
		return Bool(i%2 == 0)
	case 3:
		return Bytes(bs)
	default:
		return Ref(pnode.Ref{PNode: pnode.PNode(p), Version: pnode.Version(v)})
	}
}

func TestPropertyRecordRoundTrip(t *testing.T) {
	f := func(sp uint64, sv uint32, attr string, which uint8, i int64, s string, bs []byte, p uint64, v uint32) bool {
		r := Record{
			Subject: pnode.Ref{PNode: pnode.PNode(sp), Version: pnode.Version(sv)},
			Attr:    Attr(attr),
			Value:   randomValue(which, i, s, bs, p, v),
		}
		enc := AppendRecord(nil, r)
		got, n, err := DecodeRecord(enc)
		if err != nil || n != len(enc) {
			return false
		}
		// Bytes(nil) and Bytes([]byte{}) compare equal via Equal.
		return got.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBundleRoundTripPreservesOrder(t *testing.T) {
	f := func(seeds []uint32) bool {
		b := &Bundle{}
		for _, s := range seeds {
			b.Add(Input(ref(uint64(s%97+1), s%5+1), ref(uint64(s%89+1), s%7+1)))
		}
		enc := EncodeBundle(b)
		got, n, err := DecodeBundle(enc)
		if err != nil || n != len(enc) || got.Len() != b.Len() {
			return false
		}
		for i := range got.Records {
			if !got.Records[i].Equal(b.Records[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendValueAllKindsDecodable(t *testing.T) {
	vals := []Value{Int(0), Int(1 << 60), StringVal("π"), Bool(false), Bytes([]byte("raw")), Ref(ref(1, 1))}
	for _, v := range vals {
		enc := AppendValue(nil, v)
		d := &decoder{buf: enc}
		got, err := d.value()
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if !got.Equal(v) {
			t.Fatalf("got %v want %v", got, v)
		}
	}
}

func TestDecodeRecordExtraBytesReported(t *testing.T) {
	r := Input(ref(1, 1), ref(2, 2))
	enc := AppendRecord(nil, r)
	enc = append(enc, 0xAB, 0xCD)
	got, n, err := DecodeRecord(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc)-2 {
		t.Fatalf("consumed %d, want %d", n, len(enc)-2)
	}
	if !reflect.DeepEqual(got.Subject, r.Subject) {
		t.Fatal("subject mismatch")
	}
}
