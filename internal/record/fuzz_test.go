package record

import (
	"bytes"
	"testing"
)

// FuzzRecordRoundTrip drives the record codec with arbitrary bytes. The
// codec is the trust boundary for everything downstream of it — log
// replay, the wire protocol, and the tamper-evidence layer all hash or
// re-encode what it hands back — so the property fuzzing defends is
// canonicality: any bytes that decode must re-encode to a decodable form
// whose re-encoding is byte-identical (a fixed point after one round).
// Without it, two daemons could "agree" on a record yet hash different
// bytes, and a signed MMR root would not pin what it claims to pin.
func FuzzRecordRoundTrip(f *testing.F) {
	seed := [][]byte{
		{},
		{0x00},
		AppendRecord(nil, New(ref(1, 1), AttrName, StringVal("/etc/passwd"))),
		AppendRecord(nil, New(ref(7, 2), AttrType, StringVal(TypeFile))),
		AppendRecord(nil, Input(ref(3, 1), ref(9, 4))),
		AppendRecord(nil, New(ref(2, 1), AttrArgv, Bytes([]byte{0, 1, 2, 255}))),
		AppendRecord(nil, New(ref(5, 1), AttrEnv, Int(-42))),
		AppendRecord(nil, New(ref(6, 1), Attr("custom.attr"), Bool(true))),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeRecord(data)
		if err != nil {
			return // malformed input rejected: fine
		}
		if n < 0 || n > len(data) {
			t.Fatalf("DecodeRecord consumed %d of %d bytes", n, len(data))
		}
		enc := AppendRecord(nil, r)
		r2, n2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-encoding of a decoded record does not decode: %v\nrecord: %v\nbytes: %x", err, r, enc)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d re-encoded bytes", n2, len(enc))
		}
		if !r.Equal(r2) {
			t.Fatalf("record changed across round trip:\n first: %v\nsecond: %v", r, r2)
		}
		if enc2 := AppendRecord(nil, r2); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding is not canonical:\n first: %x\nsecond: %x", enc, enc2)
		}
	})
}

// FuzzBundleRoundTrip is the same fixed-point property over framed
// bundles, which is what actually crosses the wire and the log.
func FuzzBundleRoundTrip(f *testing.F) {
	b := NewBundle(
		New(ref(1, 1), AttrName, StringVal("a")),
		Input(ref(1, 1), ref(2, 3)),
	)
	f.Add(EncodeBundle(b))
	f.Add(EncodeBundle(nil))
	f.Add([]byte{0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, n, err := DecodeBundle(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("DecodeBundle consumed %d of %d bytes", n, len(data))
		}
		enc := EncodeBundle(b)
		b2, n2, err := DecodeBundle(enc)
		if err != nil {
			t.Fatalf("re-encoding of a decoded bundle does not decode: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d re-encoded bytes", n2, len(enc))
		}
		if enc2 := EncodeBundle(b2); !bytes.Equal(enc, enc2) {
			t.Fatalf("bundle encoding is not canonical:\n first: %x\nsecond: %x", enc, enc2)
		}
	})
}
