package record

import (
	"strings"
	"testing"

	"passv2/internal/pnode"
)

func ref(p uint64, v uint32) pnode.Ref {
	return pnode.Ref{PNode: pnode.PNode(p), Version: pnode.Version(v)}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Int(-7), KindInt},
		{StringVal("hello"), KindString},
		{Bool(true), KindBool},
		{Bytes([]byte{1, 2, 3}), KindBytes},
		{Ref(ref(9, 2)), KindRef},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("kind = %v, want %v", c.v.Kind(), c.kind)
		}
		if !c.v.IsValid() {
			t.Errorf("value %v should be valid", c.v)
		}
	}
	if (Value{}).IsValid() {
		t.Error("zero Value must be invalid")
	}
	if i, ok := Int(-7).AsInt(); !ok || i != -7 {
		t.Error("AsInt failed")
	}
	if s, ok := StringVal("x").AsString(); !ok || s != "x" {
		t.Error("AsString failed")
	}
	if b, ok := Bool(true).AsBool(); !ok || !b {
		t.Error("AsBool failed")
	}
	if _, ok := Int(1).AsString(); ok {
		t.Error("cross-kind accessor must fail")
	}
	if r, ok := Ref(ref(9, 2)).AsRef(); !ok || r != ref(9, 2) {
		t.Error("AsRef failed")
	}
}

func TestValueEqual(t *testing.T) {
	if !Int(5).Equal(Int(5)) || Int(5).Equal(Int(6)) {
		t.Error("Int equality wrong")
	}
	if !Bytes([]byte("ab")).Equal(Bytes([]byte("ab"))) {
		t.Error("Bytes equality wrong")
	}
	if Bytes([]byte("ab")).Equal(Bytes([]byte("ac"))) {
		t.Error("Bytes inequality wrong")
	}
	if Int(1).Equal(Bool(true)) {
		t.Error("cross-kind values must not be equal")
	}
}

func TestRecordString(t *testing.T) {
	r := Input(ref(3, 1), ref(2, 4))
	want := "pn:3@v1 INPUT pn:2@v4"
	if got := r.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestBundleSubjectsSortedDistinct(t *testing.T) {
	b := NewBundle(
		New(ref(5, 1), AttrName, StringVal("a")),
		New(ref(2, 1), AttrName, StringVal("b")),
		New(ref(5, 1), AttrType, StringVal(TypeFile)),
		New(ref(2, 2), AttrType, StringVal(TypeFile)),
	)
	subs := b.Subjects()
	if len(subs) != 3 {
		t.Fatalf("got %d subjects, want 3", len(subs))
	}
	for i := 1; i < len(subs); i++ {
		if !subs[i-1].Less(subs[i]) {
			t.Fatalf("subjects not sorted: %v", subs)
		}
	}
}

func TestBundleCloneIsDeep(t *testing.T) {
	data := []byte("payload")
	b := NewBundle(New(ref(1, 1), Attr("DATA"), Bytes(data)))
	c := b.Clone()
	data[0] = 'X'
	got, _ := c.Records[0].Value.AsBytes()
	if got[0] == 'X' {
		t.Fatal("Clone must deep-copy byte values")
	}
}

func TestNilBundleSafe(t *testing.T) {
	var b *Bundle
	if b.Len() != 0 || !b.Empty() {
		t.Fatal("nil bundle should behave as empty")
	}
	if b.Subjects() != nil {
		t.Fatal("nil bundle has no subjects")
	}
	if b.Clone() != nil {
		t.Fatal("clone of nil is nil")
	}
}

func TestBundleStringListsRecords(t *testing.T) {
	b := NewBundle(
		Input(ref(3, 1), ref(2, 4)),
		New(ref(3, 1), AttrName, StringVal("out.dat")),
	)
	s := b.String()
	if !strings.Contains(s, "INPUT") || !strings.Contains(s, "out.dat") {
		t.Errorf("Bundle.String missing records: %q", s)
	}
	if (&Bundle{}).String() != "(empty bundle)" {
		t.Error("empty bundle string wrong")
	}
}
