package replica

import (
	"fmt"
	"sync"

	"passv2/internal/vfs"
)

// FileSource adapts the primary's live provenance-log file (log.current,
// kept open by the provlog writer) as a replication Source. Reads race the
// writer harmlessly: Size() is sampled before ReadAt, and the writer only
// ever appends, so any prefix read is a stable prefix of the final log.
type FileSource struct {
	f vfs.File
}

// OpenFileSource opens the log file at path read-only.
func OpenFileSource(fs vfs.FS, path string) (*FileSource, error) {
	f, err := fs.Open(path, vfs.ORdOnly)
	if err != nil {
		return nil, err
	}
	return &FileSource{f: f}, nil
}

// NewFileSource wraps an already-open log file (the daemon shares its
// writer's handle so replication sees buffered-but-synced bytes exactly
// when the file does).
func NewFileSource(f vfs.File) *FileSource { return &FileSource{f: f} }

// Size reports the current log size.
func (s *FileSource) Size() (int64, error) { return s.f.Size(), nil }

// ReadAt reads log bytes at off.
func (s *FileSource) ReadAt(p []byte, off int64) (int, error) {
	return s.f.ReadAt(p, off)
}

// Close closes the underlying file.
func (s *FileSource) Close() error { return s.f.Close() }

// ErrGap is returned by FollowerLog.Append when the primary tries to
// append past the follower's current size — bytes would be missing in
// between. The primary reacts by re-reading the follower's state and
// streaming the gap (this happens when a follower loses its disk and
// restarts empty while the primary still remembers a higher offset).
var ErrGap = fmt.Errorf("replica: append past end of follower log")

// FollowerLog is the follower side of byte-level log shipping: an
// append-only file whose size is, by construction, the follower's durable
// replication offset. Append is idempotent on overlap (the primary may
// resend a prefix after a reconnect) and refuses gaps, so the on-disk log
// is always byte-identical to a prefix of the primary's log.
type FollowerLog struct {
	mu sync.Mutex
	f  vfs.File
}

// OpenFollowerLog opens (creating if needed) the follower's log file.
// The returned log's Size is the offset replication resumes from — no
// sidecar state survives or needs to.
func OpenFollowerLog(fs vfs.FS, path string) (*FollowerLog, error) {
	f, err := fs.Open(path, vfs.OCreate|vfs.ORdWr)
	if err != nil {
		return nil, err
	}
	return &FollowerLog{f: f}, nil
}

// NewFollowerLog wraps an already-open file.
func NewFollowerLog(f vfs.File) *FollowerLog { return &FollowerLog{f: f} }

// Size reports the durable replicated size.
func (l *FollowerLog) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Size()
}

// Append applies log bytes at off durably (write + fsync) and returns the
// new size. Bytes before the current size are skipped idempotently — the
// primary resending an already-held prefix is a no-op, which makes
// at-least-once delivery after reconnects safe. An off beyond the current
// size returns ErrGap.
func (l *FollowerLog) Append(off int64, p []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	size := l.f.Size()
	if off > size {
		return size, fmt.Errorf("%w: have %d bytes, append at %d", ErrGap, size, off)
	}
	// Skip the already-held overlap; identical bytes are guaranteed because
	// both sides hold prefixes of the same primary log.
	skip := size - off
	if skip >= int64(len(p)) {
		return size, nil
	}
	p = p[skip:]
	if _, err := l.f.WriteAt(p, size); err != nil {
		return size, err
	}
	if err := l.f.Sync(); err != nil {
		return size, err
	}
	return l.f.Size(), nil
}

// Close closes the underlying file.
func (l *FollowerLog) Close() error { return l.f.Close() }
