// Package replica replicates a passd daemon's provenance log to follower
// daemons with a write quorum, so an acknowledged record survives not just
// the disk that recorded it (PR 4's checkpoint stack) but the machine.
//
// The unit of replication is the primary's provenance-log byte stream:
// followers receive exactly the primary's log bytes, in order, and append
// them to their own log before acknowledging. That choice buys three
// properties for free:
//
//   - A follower's durable replication state IS its log size. There is no
//     separate sequence file to keep crash-consistent: after a follower
//     restart, the byte offset where replication resumes is the size of
//     log.current on disk, and the follower's database rebuilds from the
//     same bytes through the ordinary Waldo drain path.
//   - Catch-up streaming is a file read. A follower that was down for an
//     hour reports its offset and the primary streams the missing range
//     from its own log — no replay buffers, no bounded retention window
//     (the log is the retention).
//   - "More caught up" means "strict superset". Follower offsets are
//     totally ordered, so the freshest reachable follower is guaranteed to
//     hold every record any other follower acknowledged — the property
//     that makes read failover lose nothing.
//
// The primary's durable-ack barrier calls Commit(size) after its local
// fsync: Commit blocks until at least Quorum-1 followers durably hold the
// log prefix [0, size). With a 3-node group and Quorum=2, any single
// SIGKILL — follower or primary — loses zero acknowledged records: the
// prefix covering every ack is on at least one surviving node (and the
// primary's own disk, which recovers on restart).
//
// Each follower is driven by its own goroutine: dial (with timeout),
// learn the follower's durable offset, stream chunks, and on any error
// reconnect with exponential backoff. Followers join dynamically (Join is
// idempotent), re-announce themselves after primary restarts, and are
// caught up from whatever offset they report. See DESIGN.md §10.
package replica

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Peer is one follower as the primary drives it over the wire. passd
// provides the implementation (a resilient client speaking the
// replstate/replappend verbs); tests provide in-memory fakes.
type Peer interface {
	// State reports the follower's durable replicated log size.
	State() (int64, error)
	// Append applies log bytes at off (which must equal the follower's
	// current size; earlier offsets are skipped idempotently) durably and
	// returns the follower's new size.
	Append(off int64, p []byte) (int64, error)
	Close() error
}

// Dialer connects to a follower by address.
type Dialer func(addr string) (Peer, error)

// Source is the primary's own durable log, the stream being replicated.
type Source interface {
	Size() (int64, error)
	ReadAt(p []byte, off int64) (int, error)
}

// ProofSource is a Source that can vouch for its stream with MMR root
// proofs (DESIGN.md §13). ProofAt reports the number of MMR leaves whose
// records are fully contained in the log prefix [0, end) and the root
// over those leaves; ok is false when no proof is available for that
// prefix (tamper evidence off, or the MMR is pruned below end) — the
// primary then falls back to plain appends.
type ProofSource interface {
	Source
	ProofAt(end int64) (n uint64, root [32]byte, ok bool)
}

// ProofPeer is a Peer that accepts proof-carrying appends: the follower
// recomputes the root over its own copy of the prefix and refuses the
// append — with a permanent, machine-readable "forked" error — when it
// disagrees. Streaming uses AppendProof only when both the source and the
// peer support proofs; either side missing degrades to plain Append.
type ProofPeer interface {
	Peer
	AppendProof(off int64, p []byte, n uint64, root [32]byte) (int64, error)
}

// WithProofs glues a proof lookup onto an existing Source, upgrading it
// to a ProofSource. The daemon wires at to its live MMR.
func WithProofs(s Source, at func(end int64) (uint64, [32]byte, bool)) ProofSource {
	return &proofSource{Source: s, at: at}
}

type proofSource struct {
	Source
	at func(end int64) (uint64, [32]byte, bool)
}

func (s *proofSource) ProofAt(end int64) (uint64, [32]byte, bool) { return s.at(end) }

// ErrQuorum is the commit failure: not enough followers acknowledged the
// prefix within the commit timeout. The write is durable locally but must
// not be acknowledged to the client; the client sees a retryable
// "unavailable" error.
var ErrQuorum = errors.New("replica: write quorum not reached")

// Config configures a Primary.
type Config struct {
	// Quorum is the write quorum W, counting the primary itself: an ack
	// requires the primary's fsync plus W-1 follower acks. <=1 means
	// asynchronous replication (commits never block).
	Quorum int
	// Dial connects to followers.
	Dial Dialer
	// CommitTimeout bounds how long Commit waits for quorum; <=0 means 10s.
	CommitTimeout time.Duration
	// ChunkSize bounds one replicated append; <=0 means 256 KiB.
	ChunkSize int
	// RetryBase/RetryMax bound the per-follower reconnect backoff;
	// defaults 50ms / 2s.
	RetryBase time.Duration
	RetryMax  time.Duration
}

// FollowerStatus is one follower's view for stats and tests.
type FollowerStatus struct {
	Addr      string
	Acked     int64 // durable log bytes the follower holds
	Connected bool
}

// Primary replicates a Source to a dynamic set of followers.
type Primary struct {
	src Source
	cfg Config

	mu        sync.Mutex
	cond      *sync.Cond
	followers map[string]*follower
	target    int64 // highest size any Commit has asked for
	closed    bool

	wg sync.WaitGroup
}

type follower struct {
	addr      string
	acked     int64
	connected bool
}

// NewPrimary starts a replication primary over src. Followers join via
// Join; stop with Close.
func NewPrimary(src Source, cfg Config) *Primary {
	if cfg.CommitTimeout <= 0 {
		cfg.CommitTimeout = 10 * time.Second
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 256 << 10
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2 * time.Second
	}
	p := &Primary{src: src, cfg: cfg, followers: make(map[string]*follower)}
	p.cond = sync.NewCond(&p.mu)
	// Coarse periodic wake so follower loops notice new log bytes that
	// arrive outside Commit (and re-check liveness) without busy-polling.
	p.wg.Add(1)
	go p.ticker()
	return p
}

func (p *Primary) ticker() {
	defer p.wg.Done()
	t := time.NewTicker(100 * time.Millisecond)
	defer t.Stop()
	for range t.C {
		p.mu.Lock()
		closed := p.closed
		p.cond.Broadcast()
		p.mu.Unlock()
		if closed {
			return
		}
	}
}

// Join registers a follower address and starts driving it. It is
// idempotent: re-joining an address already being driven is a no-op, so
// followers can re-announce themselves on a timer without churn.
func (p *Primary) Join(addr string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	if _, ok := p.followers[addr]; ok {
		return false
	}
	f := &follower{addr: addr}
	p.followers[addr] = f
	p.wg.Add(1)
	go p.drive(f)
	return true
}

// drive is one follower's replication loop: connect, learn the durable
// offset, stream chunks, reconnect with backoff on any failure.
func (p *Primary) drive(f *follower) {
	defer p.wg.Done()
	backoff := p.cfg.RetryBase
	for {
		if p.isClosed() {
			return
		}
		peer, err := p.cfg.Dial(f.addr)
		if err == nil {
			var size int64
			size, err = peer.State()
			if err == nil {
				p.setState(f, size, true)
				backoff = p.cfg.RetryBase
				err = p.stream(f, peer)
			}
			peer.Close()
		}
		p.setConnected(f, false)
		if p.isClosed() {
			return
		}
		// Exponential backoff with jitter before redialing, so a dead
		// follower costs one cheap dial attempt per backoff period and a
		// restarted one is picked up quickly.
		time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff/2+1))))
		if backoff *= 2; backoff > p.cfg.RetryMax {
			backoff = p.cfg.RetryMax
		}
	}
}

// stream ships log bytes to one connected follower until an error or
// close. It returns nil only on close. When both the source and the peer
// speak proofs, every chunk carries the MMR root covering the prefix it
// extends to, and a follower that detects a fork fails the stream — the
// drive loop's reconnects then keep failing (the follower stays
// poisoned), the follower never acks, and quorum commits fail closed
// rather than replicate divergent histories.
func (p *Primary) stream(f *follower, peer Peer) error {
	proofPeer, _ := peer.(ProofPeer)
	proofSrc, _ := p.src.(ProofSource)
	buf := make([]byte, p.cfg.ChunkSize)
	for {
		p.mu.Lock()
		for {
			if p.closed {
				p.mu.Unlock()
				return nil
			}
			if f.acked < p.target {
				break
			}
			// Nothing committed past this follower: check the raw source
			// size too (bytes staged outside a commit, or a commit about
			// to happen) and otherwise wait for the next broadcast.
			p.mu.Unlock()
			size, err := p.src.Size()
			p.mu.Lock()
			if err == nil && f.acked < size {
				break
			}
			p.cond.Wait()
		}
		off := f.acked
		p.mu.Unlock()

		size, err := p.src.Size()
		if err != nil {
			return err
		}
		if size <= off {
			continue
		}
		n := size - off
		if n > int64(len(buf)) {
			n = int64(len(buf))
		}
		rn, err := p.src.ReadAt(buf[:n], off)
		if rn == 0 && err != nil {
			return err
		}
		var newSize int64
		if proofPeer != nil && proofSrc != nil {
			if n, root, ok := proofSrc.ProofAt(off + int64(rn)); ok {
				newSize, err = proofPeer.AppendProof(off, buf[:rn], n, root)
			} else {
				newSize, err = peer.Append(off, buf[:rn])
			}
		} else {
			newSize, err = peer.Append(off, buf[:rn])
		}
		if err != nil {
			if errors.Is(err, ErrGap) {
				// The follower holds less than we believed (it restarted
				// with a truncated or empty log). Re-learn its real size and
				// resume streaming from there on the same connection.
				size, serr := peer.State()
				if serr != nil {
					return serr
				}
				p.setState(f, size, true)
				continue
			}
			return err
		}
		if newSize < off+int64(rn) {
			return fmt.Errorf("replica: follower %s acked %d after append to %d", f.addr, newSize, off+int64(rn))
		}
		p.setAcked(f, newSize, true)
	}
}

// setAcked raises a follower's acked offset after a successful append;
// it never lowers it (an append cannot shrink the follower's log).
func (p *Primary) setAcked(f *follower, size int64, connected bool) {
	p.mu.Lock()
	if size > f.acked {
		f.acked = size
	}
	f.connected = connected
	p.cond.Broadcast()
	p.mu.Unlock()
}

// setState overwrites a follower's acked offset with the size the
// follower itself just reported — lowering it when the follower holds
// less than we remembered. A follower that restarted with a truncated or
// empty log must stop counting toward the write quorum for bytes it no
// longer holds, and streaming must resume from its real size; keeping
// the stale high-water mark would both fake quorum and wedge the stream
// on ErrGap forever.
func (p *Primary) setState(f *follower, size int64, connected bool) {
	p.mu.Lock()
	f.acked = size
	f.connected = connected
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *Primary) setConnected(f *follower, connected bool) {
	p.mu.Lock()
	f.connected = connected
	p.mu.Unlock()
}

func (p *Primary) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// SourceSize reports the primary log's current size — the commit point for
// an ack barrier that just fsynced.
func (p *Primary) SourceSize() (int64, error) { return p.src.Size() }

// Commit blocks until the write quorum durably holds the log prefix
// [0, size): the primary counts as one vote, so Quorum-1 follower acks at
// or past size are required. On timeout it returns ErrQuorum (wrapped with
// the in-sync count); the caller must then fail the client request rather
// than acknowledge it.
func (p *Primary) Commit(size int64) error {
	need := p.cfg.Quorum - 1
	if need <= 0 {
		// Asynchronous replication: wake the follower loops and return.
		p.mu.Lock()
		if size > p.target {
			p.target = size
		}
		p.cond.Broadcast()
		p.mu.Unlock()
		return nil
	}
	deadline := time.Now().Add(p.cfg.CommitTimeout)
	timer := time.AfterFunc(p.cfg.CommitTimeout, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer timer.Stop()

	p.mu.Lock()
	defer p.mu.Unlock()
	if size > p.target {
		p.target = size
	}
	p.cond.Broadcast()
	for {
		if p.inSyncLocked(size) >= need {
			return nil
		}
		if p.closed {
			return fmt.Errorf("%w: primary closed", ErrQuorum)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: %d/%d followers hold %d bytes (quorum %d)",
				ErrQuorum, p.inSyncLocked(size), len(p.followers), size, p.cfg.Quorum)
		}
		p.cond.Wait()
	}
}

func (p *Primary) inSyncLocked(size int64) int {
	n := 0
	for _, f := range p.followers {
		if f.acked >= size {
			n++
		}
	}
	return n
}

// InSync reports how many followers durably hold the prefix [0, size).
func (p *Primary) InSync(size int64) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inSyncLocked(size)
}

// Followers reports every follower's replication state.
func (p *Primary) Followers() []FollowerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]FollowerStatus, 0, len(p.followers))
	for _, f := range p.followers {
		out = append(out, FollowerStatus{Addr: f.addr, Acked: f.acked, Connected: f.connected})
	}
	return out
}

// Quorum reports the configured write quorum (counting the primary).
func (p *Primary) Quorum() int { return p.cfg.Quorum }

// Close stops every follower loop and releases waiting commits with
// ErrQuorum.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	return nil
}
