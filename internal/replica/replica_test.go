package replica

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"passv2/internal/vfs"
)

// memSource is an in-memory growable Source.
type memSource struct {
	mu  sync.Mutex
	buf []byte
}

func (s *memSource) append(p []byte) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = append(s.buf, p...)
	return int64(len(s.buf))
}

func (s *memSource) Size() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.buf)), nil
}

func (s *memSource) ReadAt(p []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off >= int64(len(s.buf)) {
		return 0, fmt.Errorf("read past end")
	}
	n := copy(p, s.buf[off:])
	return n, nil
}

// fakePeer is an in-memory follower with switchable failure.
type fakePeer struct {
	mu   sync.Mutex
	buf  []byte
	fail bool // State/Append error while set
}

func (p *fakePeer) setFail(on bool) {
	p.mu.Lock()
	p.fail = on
	p.mu.Unlock()
}

// truncate simulates the follower losing its log (disk loss, restart
// from an empty data directory): its durable size drops to zero.
func (p *fakePeer) truncate() {
	p.mu.Lock()
	p.buf = nil
	p.mu.Unlock()
}

func (p *fakePeer) held() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]byte(nil), p.buf...)
}

type fakeConn struct{ p *fakePeer }

func (c fakeConn) State() (int64, error) {
	c.p.mu.Lock()
	defer c.p.mu.Unlock()
	if c.p.fail {
		return 0, fmt.Errorf("fake: down")
	}
	return int64(len(c.p.buf)), nil
}

func (c fakeConn) Append(off int64, b []byte) (int64, error) {
	c.p.mu.Lock()
	defer c.p.mu.Unlock()
	if c.p.fail {
		return 0, fmt.Errorf("fake: down")
	}
	size := int64(len(c.p.buf))
	if off > size {
		return size, ErrGap
	}
	skip := size - off
	if skip < int64(len(b)) {
		c.p.buf = append(c.p.buf, b[skip:]...)
	}
	return int64(len(c.p.buf)), nil
}

func (c fakeConn) Close() error { return nil }

// fakeNet maps addresses to fakePeers for the Dialer.
type fakeNet struct {
	mu    sync.Mutex
	peers map[string]*fakePeer
}

func newFakeNet() *fakeNet { return &fakeNet{peers: make(map[string]*fakePeer)} }

func (n *fakeNet) add(addr string) *fakePeer {
	n.mu.Lock()
	defer n.mu.Unlock()
	p := &fakePeer{}
	n.peers[addr] = p
	return p
}

func (n *fakeNet) dial(addr string) (Peer, error) {
	n.mu.Lock()
	p, ok := n.peers[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("fake: no route to %s", addr)
	}
	p.mu.Lock()
	fail := p.fail
	p.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("fake: connection refused")
	}
	return fakeConn{p}, nil
}

func testConfig(n *fakeNet, quorum int) Config {
	return Config{
		Quorum:        quorum,
		Dial:          n.dial,
		CommitTimeout: 500 * time.Millisecond,
		ChunkSize:     8, // tiny chunks so catch-up exercises the chunk loop
		RetryBase:     5 * time.Millisecond,
		RetryMax:      50 * time.Millisecond,
	}
}

func TestQuorumCommitReplicatesBeforeAck(t *testing.T) {
	net := newFakeNet()
	f1 := net.add("a")
	f2 := net.add("b")
	src := &memSource{}
	p := NewPrimary(src, testConfig(net, 2))
	defer p.Close()
	p.Join("a")
	p.Join("b")

	payload := []byte("the quick brown fox jumps over the lazy dog")
	size := src.append(payload)
	if err := p.Commit(size); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Quorum=2 means at least one follower holds every byte at ack time.
	if h1, h2 := f1.held(), f2.held(); int64(len(h1)) < size && int64(len(h2)) < size {
		t.Fatalf("no follower holds the committed prefix: %d / %d of %d", len(h1), len(h2), size)
	}
	// Both catch up shortly after.
	waitFor(t, func() bool {
		return bytes.Equal(f1.held(), payload) && bytes.Equal(f2.held(), payload)
	})
}

func TestCommitFailsWithoutQuorum(t *testing.T) {
	net := newFakeNet()
	f := net.add("a")
	f.setFail(true)
	src := &memSource{}
	p := NewPrimary(src, testConfig(net, 2))
	defer p.Close()
	p.Join("a")

	size := src.append([]byte("doomed"))
	err := p.Commit(size)
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("Commit with dead follower = %v, want ErrQuorum", err)
	}
}

func TestFollowerRecoversAndCatchesUp(t *testing.T) {
	net := newFakeNet()
	f := net.add("a")
	src := &memSource{}
	p := NewPrimary(src, testConfig(net, 2))
	defer p.Close()
	p.Join("a")

	size := src.append([]byte("first batch, fully replicated. "))
	if err := p.Commit(size); err != nil {
		t.Fatal(err)
	}

	// Follower goes down; commits fail but the log keeps growing locally.
	f.setFail(true)
	size = src.append([]byte("written during the outage. "))
	if err := p.Commit(size); !errors.Is(err, ErrQuorum) {
		t.Fatalf("Commit during outage = %v, want ErrQuorum", err)
	}

	// Follower comes back: the primary reconnects, streams the gap in
	// chunks, and commits succeed again.
	f.setFail(false)
	size = src.append([]byte("and the recovery batch."))
	if err := p.Commit(size); err != nil {
		t.Fatalf("Commit after recovery: %v", err)
	}
	want := "first batch, fully replicated. written during the outage. and the recovery batch."
	if got := string(f.held()); got != want {
		t.Fatalf("follower log = %q, want %q", got, want)
	}
}

// TestTruncatedFollowerRecoversAcrossReconnect is the ErrGap scenario
// from log.go driven end to end: a follower that goes down and comes
// back with an empty log must have its acked offset *lowered* to what
// State() reports — not kept at the stale high-water mark, which would
// both count phantom bytes toward the write quorum and wedge every
// append on ErrGap forever — and then be restreamed from scratch.
func TestTruncatedFollowerRecoversAcrossReconnect(t *testing.T) {
	net := newFakeNet()
	f := net.add("a")
	src := &memSource{}
	p := NewPrimary(src, testConfig(net, 2))
	defer p.Close()
	p.Join("a")

	size := src.append([]byte("fully replicated before the disk died. "))
	if err := p.Commit(size); err != nil {
		t.Fatal(err)
	}

	// The follower loses its disk: connection drops and the log is gone.
	// An append during the outage makes the stream notice the dead peer.
	f.setFail(true)
	f.truncate()
	size = src.append([]byte("written during the outage. "))
	if err := p.Commit(size); !errors.Is(err, ErrQuorum) {
		t.Fatalf("Commit during outage = %v, want ErrQuorum", err)
	}
	waitFor(t, func() bool {
		fs := p.Followers()
		return len(fs) == 1 && !fs[0].Connected
	})
	f.setFail(false)

	// The reconnect re-learns the follower's real (zero) size and streams
	// the whole log again; only then may new commits succeed.
	size = src.append([]byte("and rewritten after recovery."))
	if err := p.Commit(size); err != nil {
		t.Fatalf("Commit after follower truncation: %v", err)
	}
	want := "fully replicated before the disk died. written during the outage. and rewritten after recovery."
	if got := string(f.held()); got != want {
		t.Fatalf("follower log = %q, want %q", got, want)
	}
	fs := p.Followers()
	if len(fs) != 1 || fs[0].Acked != size {
		t.Fatalf("follower status = %+v, want acked %d", fs, size)
	}
}

// TestMidStreamGapRestreams truncates the follower while its connection
// stays healthy: the next append returns ErrGap, and the primary must
// re-read the follower's state and restream in place instead of treating
// the gap as a connection failure (or worse, retrying the same offset).
func TestMidStreamGapRestreams(t *testing.T) {
	net := newFakeNet()
	f := net.add("a")
	src := &memSource{}
	p := NewPrimary(src, testConfig(net, 2))
	defer p.Close()
	p.Join("a")

	size := src.append([]byte("first epoch, acked and then lost. "))
	if err := p.Commit(size); err != nil {
		t.Fatal(err)
	}

	f.truncate() // connection stays up; only the data is gone

	size = src.append([]byte("second epoch."))
	if err := p.Commit(size); err != nil {
		t.Fatalf("Commit across a mid-stream gap: %v", err)
	}
	want := "first epoch, acked and then lost. second epoch."
	waitFor(t, func() bool { return string(f.held()) == want })
}

func TestLateJoinerStreamsFromZero(t *testing.T) {
	net := newFakeNet()
	src := &memSource{}
	// Asynchronous primary (quorum 1): bytes exist before anyone joins.
	p := NewPrimary(src, testConfig(net, 1))
	defer p.Close()
	payload := []byte("history that predates the follower entirely, long enough for several chunks")
	src.append(payload)

	f := net.add("late")
	p.Join("late")
	waitFor(t, func() bool { return bytes.Equal(f.held(), payload) })
}

func TestJoinIsIdempotent(t *testing.T) {
	net := newFakeNet()
	net.add("a")
	p := NewPrimary(&memSource{}, testConfig(net, 1))
	defer p.Close()
	if !p.Join("a") {
		t.Fatal("first Join returned false")
	}
	if p.Join("a") {
		t.Fatal("second Join returned true, want no-op")
	}
	if got := len(p.Followers()); got != 1 {
		t.Fatalf("followers = %d, want 1", got)
	}
}

func TestFollowerLogIdempotentAndGap(t *testing.T) {
	fs := vfs.NewMemFS("mem", nil)
	l, err := OpenFollowerLog(fs, "/log.current")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(0, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	// Full overlap: no-op.
	if n, err := l.Append(0, []byte("abc")); err != nil || n != 6 {
		t.Fatalf("overlap append = %d, %v", n, err)
	}
	// Partial overlap: only the new suffix lands.
	if n, err := l.Append(3, []byte("defghi")); err != nil || n != 9 {
		t.Fatalf("partial-overlap append = %d, %v", n, err)
	}
	// Gap: refused.
	if _, err := l.Append(100, []byte("x")); !errors.Is(err, ErrGap) {
		t.Fatalf("gap append = %v, want ErrGap", err)
	}
	l.Close()

	// Reopen: size survives — the log file IS the replication state.
	l2, err := OpenFollowerLog(fs, "/log.current")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Size(); got != 9 {
		t.Fatalf("reopened size = %d, want 9", got)
	}
	buf := make([]byte, 9)
	src, _ := OpenFileSource(fs, "/log.current")
	defer src.Close()
	if _, err := src.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abcdefghi" {
		t.Fatalf("log contents = %q", buf)
	}
}

func TestCloseReleasesWaitingCommit(t *testing.T) {
	net := newFakeNet()
	f := net.add("a")
	f.setFail(true)
	src := &memSource{}
	cfg := testConfig(net, 2)
	cfg.CommitTimeout = 10 * time.Second // would hang without Close
	p := NewPrimary(src, cfg)
	p.Join("a")
	size := src.append([]byte("x"))

	errc := make(chan error, 1)
	go func() { errc <- p.Commit(size) }()
	time.Sleep(20 * time.Millisecond)
	p.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrQuorum) {
			t.Fatalf("Commit after Close = %v, want ErrQuorum", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Commit still blocked after Close")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
