// Package signer gives a passd daemon a durable Ed25519 identity and
// uses it to sign MMR root statements (DESIGN.md §13). The private key
// is generated on first run and kept in the key directory; the exported
// public half (signer.pub) plus a 16-byte device ID derived from the
// machine identity, the public key and the creation time is what an
// offline verifier pins as its trust anchor.
//
// What a signature means: "this daemon, holding this key, observed this
// log prefix (root, size) at this time". It does not defend against a
// daemon that was malicious from birth — such a daemon signs whatever it
// likes — but it makes after-the-fact rewriting of a log the daemon
// already signed for detectable by anyone holding the public key.
package signer

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"passv2/internal/vfs"
)

// Key file names inside the key directory.
const (
	KeyName = "signer.key" // private: JSON {seed, machine_id, created}
	PubName = "signer.pub" // public: JSON {pub, device_id, created}
)

// StatementMagic versions the canonical signed-statement encoding.
const StatementMagic = "PASSROOT1\n"

// Identity is a daemon's signing identity.
type Identity struct {
	DeviceID [16]byte
	Pub      ed25519.PublicKey
	Created  int64 // unix seconds of key generation
	priv     ed25519.PrivateKey
}

// Public is the verifier's half: everything needed to check signatures,
// nothing needed to make them.
type Public struct {
	DeviceID [16]byte
	Pub      ed25519.PublicKey
	Created  int64
}

type keyFile struct {
	Seed      string `json:"seed"` // hex ed25519 seed
	MachineID string `json:"machine_id"`
	Created   int64  `json:"created"`
}

type pubFile struct {
	Pub      string `json:"pub"`       // hex ed25519 public key
	DeviceID string `json:"device_id"` // hex
	Created  int64  `json:"created"`
}

// machineID reads a stable host identity, best effort: /etc/machine-id
// where available, a fixed fallback elsewhere. It feeds the device-ID
// derivation only, so a weak value degrades uniqueness, not security.
func machineID() string {
	if b, err := os.ReadFile("/etc/machine-id"); err == nil {
		if s := strings.TrimSpace(string(b)); s != "" {
			return s
		}
	}
	return "passv2-unknown-machine"
}

// deriveDeviceID hashes the machine identity, public key and creation
// time into the 16-byte device ID that names this daemon in signed
// statements.
func deriveDeviceID(machine string, pub ed25519.PublicKey, created int64) [16]byte {
	h := sha256.New()
	h.Write([]byte(machine))
	h.Write(pub)
	var c [8]byte
	binary.LittleEndian.PutUint64(c[:], uint64(created))
	h.Write(c[:])
	var id [16]byte
	copy(id[:], h.Sum(nil))
	return id
}

// LoadOrCreate opens the identity in dir on fs, generating a fresh key
// pair (and exporting signer.pub) on first run.
func LoadOrCreate(fs vfs.FS, dir string) (*Identity, error) {
	dir = vfs.Clean(dir)
	if err := fs.MkdirAll(dir); err != nil && !errors.Is(err, vfs.ErrExist) {
		return nil, err
	}
	keyPath := vfs.Join(dir, KeyName)
	if b, err := readAll(fs, keyPath); err == nil {
		var kf keyFile
		if err := json.Unmarshal(b, &kf); err != nil {
			return nil, fmt.Errorf("signer: %s: %v", KeyName, err)
		}
		seed, err := hex.DecodeString(kf.Seed)
		if err != nil || len(seed) != ed25519.SeedSize {
			return nil, fmt.Errorf("signer: %s holds a malformed seed", KeyName)
		}
		priv := ed25519.NewKeyFromSeed(seed)
		pub := priv.Public().(ed25519.PublicKey)
		return &Identity{
			DeviceID: deriveDeviceID(kf.MachineID, pub, kf.Created),
			Pub:      pub,
			Created:  kf.Created,
			priv:     priv,
		}, nil
	} else if !errors.Is(err, vfs.ErrNotExist) {
		return nil, err
	}

	// First run: generate, persist private then public.
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	created := time.Now().Unix()
	machine := machineID()
	id := &Identity{
		DeviceID: deriveDeviceID(machine, pub, created),
		Pub:      pub,
		Created:  created,
		priv:     priv,
	}
	kb, _ := json.Marshal(keyFile{
		Seed:      hex.EncodeToString(priv.Seed()),
		MachineID: machine,
		Created:   created,
	})
	if err := writeAll(fs, keyPath, kb); err != nil {
		return nil, err
	}
	pb, _ := json.Marshal(pubFile{
		Pub:      hex.EncodeToString(pub),
		DeviceID: hex.EncodeToString(id.DeviceID[:]),
		Created:  created,
	})
	if err := writeAll(fs, vfs.Join(dir, PubName), pb); err != nil {
		return nil, err
	}
	return id, nil
}

// LoadPublic reads an exported signer.pub from fs.
func LoadPublic(fs vfs.FS, path string) (Public, error) {
	b, err := readAll(fs, vfs.Clean(path))
	if err != nil {
		return Public{}, err
	}
	return ParsePublic(b)
}

// ParsePublic parses exported signer.pub bytes.
func ParsePublic(b []byte) (Public, error) {
	var pf pubFile
	if err := json.Unmarshal(b, &pf); err != nil {
		return Public{}, fmt.Errorf("signer: malformed public identity: %v", err)
	}
	pub, err := hex.DecodeString(pf.Pub)
	if err != nil || len(pub) != ed25519.PublicKeySize {
		return Public{}, fmt.Errorf("signer: malformed public key")
	}
	id, err := hex.DecodeString(pf.DeviceID)
	if err != nil || len(id) != 16 {
		return Public{}, fmt.Errorf("signer: malformed device id")
	}
	p := Public{Pub: ed25519.PublicKey(pub), Created: pf.Created}
	copy(p.DeviceID[:], id)
	return p, nil
}

// Statement is one signed claim about the log: the daemon identified by
// DeviceID asserts that Volume's first Size records hash to Root, as of
// checkpoint generation Gen (0 for ad-hoc roots signed over the wire) at
// Timestamp (unix seconds).
type Statement struct {
	DeviceID  [16]byte
	Volume    string
	Root      [32]byte
	Size      uint64
	Gen       uint64
	Timestamp uint64
}

// Bytes renders the canonical signed encoding.
func (s Statement) Bytes() []byte {
	out := make([]byte, 0, len(StatementMagic)+16+1+len(s.Volume)+32+24)
	out = append(out, StatementMagic...)
	out = append(out, s.DeviceID[:]...)
	out = binary.AppendUvarint(out, uint64(len(s.Volume)))
	out = append(out, s.Volume...)
	out = append(out, s.Root[:]...)
	out = binary.LittleEndian.AppendUint64(out, s.Size)
	out = binary.LittleEndian.AppendUint64(out, s.Gen)
	out = binary.LittleEndian.AppendUint64(out, s.Timestamp)
	return out
}

// Public returns the identity's shareable half — what an operator copies
// out of band for offline verification.
func (id *Identity) Public() Public {
	return Public{DeviceID: id.DeviceID, Pub: id.Pub, Created: id.Created}
}

// Sign produces the Ed25519 signature over the statement. The statement's
// DeviceID is forced to this identity's: a statement is inseparable from
// who signed it.
func (id *Identity) Sign(s Statement) []byte {
	s.DeviceID = id.DeviceID
	return ed25519.Sign(id.priv, s.Bytes())
}

// Verify checks a statement signature against a public key.
func Verify(pub ed25519.PublicKey, s Statement, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(pub, s.Bytes(), sig)
}

func readAll(fs vfs.FS, path string) ([]byte, error) {
	f, err := fs.Open(path, vfs.ORdOnly)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b := make([]byte, f.Size())
	if _, err := f.ReadAt(b, 0); err != nil && f.Size() > 0 {
		return nil, err
	}
	return b, nil
}

func writeAll(fs vfs.FS, path string, b []byte) error {
	f, err := fs.Open(path, vfs.OCreate|vfs.ORdWr|vfs.OTrunc)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(b, 0); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
