package signer

import (
	"bytes"
	"testing"

	"passv2/internal/vfs"
)

func TestLoadOrCreatePersistsIdentity(t *testing.T) {
	fs := vfs.NewMemFS("keys", nil)
	id, err := LoadOrCreate(fs, "/keys")
	if err != nil {
		t.Fatal(err)
	}
	if id.DeviceID == ([16]byte{}) {
		t.Fatal("zero device id")
	}
	// A second load returns the same identity, not a fresh key.
	again, err := LoadOrCreate(fs, "/keys")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(id.Pub, again.Pub) || id.DeviceID != again.DeviceID {
		t.Fatal("reload produced a different identity")
	}
	// The exported public half matches.
	pub, err := LoadPublic(fs, "/keys/"+PubName)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pub.Pub, id.Pub) || pub.DeviceID != id.DeviceID || pub.Created != id.Created {
		t.Fatal("exported public identity disagrees with the private one")
	}
}

func TestSignVerifyAndTamper(t *testing.T) {
	fs := vfs.NewMemFS("keys", nil)
	id, err := LoadOrCreate(fs, "/keys")
	if err != nil {
		t.Fatal(err)
	}
	st := Statement{
		DeviceID:  id.DeviceID,
		Volume:    "logdir",
		Root:      [32]byte{1, 2, 3},
		Size:      42,
		Gen:       7,
		Timestamp: 1700000000,
	}
	sig := id.Sign(st)
	if !Verify(id.Pub, st, sig) {
		t.Fatal("honest signature rejected")
	}
	// Every field is load-bearing.
	mutations := map[string]func(*Statement){
		"root":      func(s *Statement) { s.Root[0] ^= 1 },
		"size":      func(s *Statement) { s.Size++ },
		"gen":       func(s *Statement) { s.Gen++ },
		"timestamp": func(s *Statement) { s.Timestamp++ },
		"volume":    func(s *Statement) { s.Volume = "logdir2" },
		"device":    func(s *Statement) { s.DeviceID[0] ^= 1 },
	}
	for name, mutate := range mutations {
		bad := st
		mutate(&bad)
		if Verify(id.Pub, bad, sig) {
			t.Fatalf("signature still verifies after mutating %s", name)
		}
	}
	// A corrupted signature or wrong key fails.
	sig[0] ^= 1
	if Verify(id.Pub, st, sig) {
		t.Fatal("flipped signature verified")
	}
	sig[0] ^= 1
	other, _ := LoadOrCreate(fs, "/keys2")
	if Verify(other.Pub, st, sig) {
		t.Fatal("wrong key verified")
	}
	if Verify(nil, st, sig) || Verify(id.Pub, st, nil) {
		t.Fatal("malformed inputs verified")
	}
}

func TestSignForcesOwnDeviceID(t *testing.T) {
	fs := vfs.NewMemFS("keys", nil)
	id, err := LoadOrCreate(fs, "/keys")
	if err != nil {
		t.Fatal(err)
	}
	st := Statement{Volume: "v", Size: 1}
	st.DeviceID = [16]byte{0xff} // forged
	sig := id.Sign(st)
	honest := st
	honest.DeviceID = id.DeviceID
	if !Verify(id.Pub, honest, sig) {
		t.Fatal("signature not bound to the signer's device id")
	}
	if Verify(id.Pub, st, sig) {
		t.Fatal("signature verified under a forged device id")
	}
}

func TestParsePublicRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{
		nil,
		[]byte("not json"),
		[]byte(`{"pub":"zz","device_id":"00"}`),
		[]byte(`{"pub":"abcd","device_id":"00112233445566778899aabbccddeeff"}`),
	} {
		if _, err := ParsePublic(b); err == nil {
			t.Fatalf("garbage %q parsed", b)
		}
	}
}
