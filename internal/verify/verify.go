// Package verify is the offline tamper-evidence auditor (DESIGN.md §13).
// Given a provlog directory, an optional checkpoint directory, and an
// optional pinned public identity, Audit re-derives the Merkle mountain
// range from the raw log bytes and checks every signed root statement
// found in checkpoint manifests against it. It shares no state with a
// running daemon — everything is recomputed from bytes on disk, which is
// the point: a daemon (or an attacker with the daemon's disk) cannot
// vouch for itself, but it also cannot forge a signed history that an
// independent replay of the log contradicts.
//
// What a clean report means, and what it does not: every record covered
// by a signed checkpoint root is exactly as it was when that root was
// signed, and the sequence of roots describes a single append-only
// history (each signed prefix is a prefix of the next). Records appended
// after the newest signed root are CRC-checked but not signed — a report
// says how many such tail records exist rather than pretending they are
// covered. And none of this defends against a daemon whose key was
// stolen before the first signature: tamper *evidence* starts at the
// first root an auditor saw.
package verify

import (
	"bytes"
	"crypto/ed25519"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"

	"passv2/internal/checkpoint"
	"passv2/internal/mmr"
	"passv2/internal/provlog"
	"passv2/internal/signer"
	"passv2/internal/vfs"
)

// Options configures one audit run.
type Options struct {
	LogFS        vfs.FS // filesystem holding the provlog (root = log dir)
	CheckpointFS vfs.FS // optional: filesystem holding the checkpoint store
	Volume       string // provlog volume name (the daemon uses "passd")

	// Pub, when non-nil, pins the signing identity: statements carrying
	// any other key or device id fail the audit. When nil, the audit
	// still verifies every signature against the key embedded in its
	// manifest, demands that all generations agree on one key, and
	// reports that key so the operator can pin it next time.
	Pub *signer.Public

	// ProveIndices asks for inclusion proofs of specific records (by
	// leaf index, i.e. append order). Each is proven against the newest
	// signed root that covers it when one exists, else the full log.
	ProveIndices []uint64
}

// GenResult is the audit verdict for one checkpoint generation's signed
// root statement. Skipped generations (no proof for the audited volume)
// do not appear.
type GenResult struct {
	Gen       int64  `json:"gen"`
	Size      uint64 `json:"n"`
	Root      string `json:"root"`
	Timestamp uint64 `json:"ts"`
	DeviceID  string `json:"device_id"`
	SigOK     bool   `json:"sig_ok"`
	KeyOK     bool   `json:"key_ok"`
	RootOK    bool   `json:"root_ok"`
	Err       string `json:"err,omitempty"`
}

// InclusionResult is the verdict for one requested record proof.
type InclusionResult struct {
	Index  uint64 `json:"index"`
	Size   uint64 `json:"n"`      // tree size the proof was taken at
	Root   string `json:"root"`   // root the proof verifies against
	Signed bool   `json:"signed"` // root is covered by a signed statement
	OK     bool   `json:"ok"`
	Err    string `json:"err,omitempty"`
}

// ConsistencyResult is the verdict for one generation-to-generation
// append-only check.
type ConsistencyResult struct {
	FromGen  int64  `json:"from_gen"`
	ToGen    int64  `json:"to_gen"`
	FromSize uint64 `json:"from_n"`
	ToSize   uint64 `json:"to_n"`
	OK       bool   `json:"ok"`
	Err      string `json:"err,omitempty"`
}

// Report is everything Audit learned. OK is the single verdict bit:
// true iff Failures is empty.
type Report struct {
	Volume      string              `json:"volume"`
	Records     uint64              `json:"records"`      // leaves re-derived from the log
	Root        string              `json:"root"`         // root over the full log
	SignedSize  uint64              `json:"signed_n"`     // records covered by the newest good signed root
	TailRecords uint64              `json:"tail_records"` // records beyond any signed root (unsigned, CRC-only)
	Key         string              `json:"key,omitempty"`
	KeyPinned   bool                `json:"key_pinned"`
	Generations []GenResult         `json:"generations,omitempty"`
	Consistency []ConsistencyResult `json:"consistency,omitempty"`
	Inclusions  []InclusionResult   `json:"inclusions,omitempty"`
	StateFile   string              `json:"state_file,omitempty"` // mmr.state cross-check: "ok", "absent", or an error
	Failures    []string            `json:"failures,omitempty"`
	OK          bool                `json:"ok"`
}

func (r *Report) fail(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

// Audit runs the full offline verification pass. The returned error is
// reserved for environmental problems (unreadable log directory); audit
// *findings*, including corrupt checkpoints, live in Report.Failures so
// a caller sees everything wrong at once instead of the first thing.
func Audit(opts Options) (*Report, error) {
	if opts.LogFS == nil {
		return nil, errors.New("verify: no log filesystem")
	}
	if opts.Volume == "" {
		return nil, errors.New("verify: no volume name")
	}
	rep := &Report{Volume: opts.Volume, KeyPinned: opts.Pub != nil}

	// Re-derive the mountain range from raw bytes. RebuildMMR walks the
	// segment files through the same CRC-checked frame scanner the
	// daemon recovers with, so a flipped bit in any record surfaces
	// here as a scan error before we ever look at a signature.
	m, err := provlog.RebuildMMR(opts.LogFS, "/", opts.Volume)
	if err != nil {
		// Corruption in the log bytes themselves is the headline audit
		// finding, not an environmental error: report it and stop —
		// with no trustworthy replay there is nothing to check roots
		// against.
		rep.fail("replaying log: %v", err)
		return rep, nil
	}
	rep.Records = m.Count()
	root := m.Root()
	rep.Root = hex.EncodeToString(root[:])

	auditCheckpoints(opts, rep, m)
	auditStateFile(opts, rep, m)
	auditInclusions(opts, rep, m)

	rep.OK = len(rep.Failures) == 0
	return rep, nil
}

// auditCheckpoints walks every committed generation oldest-first,
// integrity-checks it, and verifies its signed root statement against
// the rebuilt MMR, then proves append-only consistency between each
// consecutive pair of signed roots.
func auditCheckpoints(opts Options, rep *Report, m *mmr.MMR) {
	if opts.CheckpointFS == nil {
		rep.TailRecords = rep.Records
		return
	}
	store, err := checkpoint.NewStore(opts.CheckpointFS, "/", 0)
	if err != nil {
		rep.fail("opening checkpoint store: %v", err)
		return
	}
	gens, err := store.Generations()
	if err != nil {
		rep.fail("listing checkpoint generations: %v", err)
		return
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })

	var pinned *signer.Public
	if opts.Pub != nil {
		p := *opts.Pub
		pinned = &p
	}
	type signedGen struct {
		gen  int64
		size uint64
		root mmr.Hash
	}
	var chain []signedGen
	for _, gen := range gens {
		man, err := store.VerifyGen(gen)
		if err != nil {
			rep.fail("generation %d: %v", gen, err)
			continue
		}
		for i := range man.Proofs {
			p := &man.Proofs[i]
			if p.Volume != opts.Volume {
				continue
			}
			g := GenResult{
				Gen:       gen,
				Size:      p.Size,
				Root:      hex.EncodeToString(p.Root[:]),
				Timestamp: p.Timestamp,
				DeviceID:  hex.EncodeToString(p.DeviceID[:]),
			}
			if pinned == nil {
				// Unpinned: adopt the first key seen and hold every
				// later generation to it, so a mid-history key swap is
				// still loud even without out-of-band pinning.
				if len(p.PubKey) != ed25519.PublicKeySize {
					g.Err = "malformed public key"
					rep.fail("generation %d: %s", gen, g.Err)
					rep.Generations = append(rep.Generations, g)
					continue
				}
				pinned = &signer.Public{DeviceID: p.DeviceID, Pub: ed25519.PublicKey(p.PubKey)}
				rep.Key = hex.EncodeToString(p.PubKey)
			}
			g.KeyOK = bytes.Equal(p.PubKey, pinned.Pub) && p.DeviceID == pinned.DeviceID
			if !g.KeyOK {
				rep.fail("generation %d: signed by a different identity (device %x)", gen, p.DeviceID)
			}
			g.SigOK = signer.Verify(pinned.Pub, signer.Statement{
				DeviceID:  p.DeviceID,
				Volume:    p.Volume,
				Root:      p.Root,
				Size:      p.Size,
				Gen:       uint64(man.Gen),
				Timestamp: p.Timestamp,
			}, p.Sig)
			if !g.SigOK {
				rep.fail("generation %d: bad signature over root statement", gen)
			}
			switch got, err := m.RootAt(p.Size); {
			case err != nil:
				// More records claimed than the log holds: the log was
				// truncated (or the claim inflated) after signing.
				g.Err = err.Error()
				rep.fail("generation %d: signed root covers %d records but the log replays %d: %v",
					gen, p.Size, rep.Records, err)
			case got != p.Root:
				rep.fail("generation %d: signed root over %d records does not match the log (log %x, signed %x)",
					gen, p.Size, got, p.Root)
			default:
				g.RootOK = true
			}
			rep.Generations = append(rep.Generations, g)
			if g.SigOK && g.KeyOK && g.RootOK {
				chain = append(chain, signedGen{gen: gen, size: p.Size, root: p.Root})
				if p.Size > rep.SignedSize {
					rep.SignedSize = p.Size
				}
			}
		}
	}
	if pinned != nil && rep.Key == "" {
		rep.Key = hex.EncodeToString(pinned.Pub)
	}
	rep.TailRecords = rep.Records - rep.SignedSize

	// Append-only consistency across the signed history: every good
	// root must be a prefix commitment of the next. With the roots
	// already recomputed this is belt over braces — but it exercises
	// the proof grammar an auditor without the full log would rely on.
	for i := 1; i < len(chain); i++ {
		a, b := chain[i-1], chain[i]
		c := ConsistencyResult{FromGen: a.gen, ToGen: b.gen, FromSize: a.size, ToSize: b.size}
		cp, err := m.Consistency(a.size, b.size)
		if err == nil {
			err = mmr.VerifyConsistency(a.root, b.root, cp)
		}
		if err != nil {
			c.Err = err.Error()
			rep.fail("generations %d→%d: history is not append-only: %v", a.gen, b.gen, err)
		} else {
			c.OK = true
		}
		rep.Consistency = append(rep.Consistency, c)
	}
}

// auditStateFile cross-checks the daemon's persisted peak file (if any)
// against the rebuilt range: same leaf count prefix, same root.
func auditStateFile(opts Options, rep *Report, m *mmr.MMR) {
	b, err := vfs.ReadFile(opts.LogFS, vfs.Join("/", provlog.MMRStateName))
	if errors.Is(err, vfs.ErrNotExist) {
		rep.StateFile = "absent"
		return
	}
	if err != nil {
		rep.StateFile = err.Error()
		rep.fail("reading %s: %v", provlog.MMRStateName, err)
		return
	}
	st, err := mmr.DecodeState(b)
	if err != nil {
		rep.StateFile = err.Error()
		rep.fail("decoding %s: %v", provlog.MMRStateName, err)
		return
	}
	pm, err := mmr.Resume(st)
	if err != nil {
		rep.StateFile = err.Error()
		rep.fail("resuming %s: %v", provlog.MMRStateName, err)
		return
	}
	want, err := m.RootAt(pm.Count())
	if err != nil {
		rep.StateFile = err.Error()
		rep.fail("%s covers %d records but the log replays %d", provlog.MMRStateName, pm.Count(), rep.Records)
		return
	}
	if got := pm.Root(); got != want {
		rep.StateFile = "root mismatch"
		rep.fail("%s root over %d records does not match the log (log %x, state %x)",
			provlog.MMRStateName, pm.Count(), want, got)
		return
	}
	rep.StateFile = "ok"
}

// auditInclusions proves each requested record, preferring the newest
// good signed root that covers it — that proof chains the record to a
// signature, not just to bytes the auditor read itself.
func auditInclusions(opts Options, rep *Report, m *mmr.MMR) {
	for _, idx := range opts.ProveIndices {
		res := InclusionResult{Index: idx}
		if idx >= rep.Records {
			res.Err = fmt.Sprintf("index %d out of range (log has %d records)", idx, rep.Records)
			rep.fail("%s", res.Err)
			rep.Inclusions = append(rep.Inclusions, res)
			continue
		}
		size := rep.Records
		if idx < rep.SignedSize {
			size = rep.SignedSize
			res.Signed = true
		}
		res.Size = size
		root, err := m.RootAt(size)
		if err == nil {
			res.Root = hex.EncodeToString(root[:])
			var leaf mmr.Hash
			if leaf, err = m.Leaf(idx); err == nil {
				var p mmr.InclusionProof
				if p, err = m.ProveAt(idx, size); err == nil {
					err = mmr.VerifyInclusion(root, leaf, p)
				}
			}
		}
		if err != nil {
			res.Err = err.Error()
			rep.fail("record %d: %v", idx, err)
		} else {
			res.OK = true
		}
		rep.Inclusions = append(rep.Inclusions, res)
	}
}
