package verify

import (
	"fmt"
	"strings"
	"testing"

	"passv2/internal/checkpoint"
	"passv2/internal/mmr"
	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/signer"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

const volume = "vol1"

// world is one daemon's on-disk footprint built in memory: a provlog
// with an attached MMR, a checkpoint store whose generations carry
// signed root statements, and the signing identity.
type world struct {
	lfs  *vfs.MemFS
	ckfs *vfs.MemFS
	id   *signer.Identity
	w    *provlog.Writer
	wd   *waldo.Waldo
	st   *checkpoint.Store
	gens int
}

func ref(pn uint64, v uint32) pnode.Ref {
	return pnode.Ref{PNode: pnode.PNode(pn), Version: pnode.Version(v)}
}

// newWorld builds the writer side exactly the way cmd/passd wires it:
// MakeProofs signs a SyncTamper snapshot for every committed generation,
// and the MMR peak state is persisted after each checkpoint.
func newWorld(t *testing.T, seed byte) *world {
	t.Helper()
	wo := &world{lfs: vfs.NewMemFS("log", nil), ckfs: vfs.NewMemFS("ck", nil)}
	var err error
	if wo.id, err = signer.LoadOrCreate(wo.lfs, "/keys"); err != nil {
		t.Fatal(err)
	}
	if wo.w, err = provlog.NewWriter(wo.lfs, "/", 4096); err != nil {
		t.Fatal(err)
	}
	if err = wo.w.AttachMMR(mmr.New(), volume); err != nil {
		t.Fatal(err)
	}
	wo.wd = waldo.New()
	wo.wd.Attach(waldo.NewLogVolume(volume, wo.lfs, wo.w))
	if wo.st, err = checkpoint.NewStore(wo.ckfs, "/", 10); err != nil {
		t.Fatal(err)
	}
	wo.st.MakeProofs = func(cp *waldo.CheckpointState) ([]checkpoint.Proof, error) {
		st, n, root, err := wo.w.SyncTamper()
		if err != nil {
			return nil, err
		}
		stmt := signer.Statement{
			Volume: volume, Root: root, Size: n,
			Gen: uint64(cp.Gen), Timestamp: 1700000000 + uint64(cp.Gen),
		}
		if err := provlog.SaveMMR(wo.lfs, "/", st); err != nil {
			return nil, err
		}
		return []checkpoint.Proof{{
			Volume: volume, Size: n, Root: root, Timestamp: stmt.Timestamp,
			DeviceID: wo.id.DeviceID, PubKey: append([]byte(nil), wo.id.Pub...),
			Sig: wo.id.Sign(stmt),
		}}, nil
	}
	_ = seed
	return wo
}

func (wo *world) append(t *testing.T, lo, n int) {
	t.Helper()
	for i := lo; i < lo+n; i++ {
		subj := ref(uint64(i%211+1), uint32(i%3+1))
		if err := wo.w.AppendRecord(0, record.New(subj, record.AttrName, record.StringVal(fmt.Sprintf("/w/f%d", i)))); err != nil {
			t.Fatal(err)
		}
	}
}

func (wo *world) checkpoint(t *testing.T) {
	t.Helper()
	if err := wo.wd.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := wo.st.Write(wo.wd.CheckpointState(), checkpoint.Policy{}); err != nil {
		t.Fatal(err)
	}
	wo.gens++
}

func (wo *world) pub() *signer.Public {
	p := wo.id.Public()
	return &p
}

// build writes three signed generations plus an unsigned tail.
func build(t *testing.T, seed byte) *world {
	t.Helper()
	wo := newWorld(t, seed)
	for g := 0; g < 3; g++ {
		wo.append(t, g*100, 100)
		wo.checkpoint(t)
	}
	wo.append(t, 300, 7) // unsigned tail
	if err := wo.w.Sync(); err != nil {
		t.Fatal(err)
	}
	return wo
}

func audit(t *testing.T, wo *world, mut func(*Options)) *Report {
	t.Helper()
	opts := Options{
		LogFS: wo.lfs, CheckpointFS: wo.ckfs, Volume: volume,
		Pub: wo.pub(), ProveIndices: []uint64{0, 150, 299, 305},
	}
	if mut != nil {
		mut(&opts)
	}
	rep, err := Audit(opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func wantFailure(t *testing.T, rep *Report, frag string) {
	t.Helper()
	if rep.OK {
		t.Fatalf("audit passed, wanted a failure mentioning %q", frag)
	}
	for _, f := range rep.Failures {
		if strings.Contains(f, frag) {
			return
		}
	}
	t.Fatalf("no failure mentions %q; got %v", frag, rep.Failures)
}

func TestAuditCleanHistory(t *testing.T) {
	wo := build(t, 1)
	rep := audit(t, wo, nil)
	if !rep.OK {
		t.Fatalf("clean history failed audit: %v", rep.Failures)
	}
	if rep.Records != 307 || rep.SignedSize != 300 || rep.TailRecords != 7 {
		t.Fatalf("records=%d signed=%d tail=%d, want 307/300/7", rep.Records, rep.SignedSize, rep.TailRecords)
	}
	if len(rep.Generations) != 3 {
		t.Fatalf("audited %d generations, want 3", len(rep.Generations))
	}
	for _, g := range rep.Generations {
		if !g.SigOK || !g.KeyOK || !g.RootOK {
			t.Fatalf("generation %d not fully verified: %+v", g.Gen, g)
		}
	}
	if len(rep.Consistency) != 2 {
		t.Fatalf("%d consistency checks, want 2", len(rep.Consistency))
	}
	for _, c := range rep.Consistency {
		if !c.OK {
			t.Fatalf("consistency %d→%d failed: %s", c.FromGen, c.ToGen, c.Err)
		}
	}
	if len(rep.Inclusions) != 4 {
		t.Fatalf("%d inclusion proofs, want 4", len(rep.Inclusions))
	}
	for _, p := range rep.Inclusions {
		if !p.OK {
			t.Fatalf("inclusion %d failed: %s", p.Index, p.Err)
		}
		if wantSigned := p.Index < 300; p.Signed != wantSigned {
			t.Fatalf("inclusion %d signed=%v, want %v", p.Index, p.Signed, wantSigned)
		}
	}
	if rep.StateFile != "ok" {
		t.Fatalf("state file cross-check: %q, want ok", rep.StateFile)
	}
	if !rep.KeyPinned {
		t.Fatal("report does not record the pinned key")
	}
}

// TestAuditUnpinnedKey: without -pub the audit adopts the oldest
// manifest's key, verifies everything against it, and says so.
func TestAuditUnpinnedKey(t *testing.T) {
	wo := build(t, 2)
	rep := audit(t, wo, func(o *Options) { o.Pub = nil })
	if !rep.OK {
		t.Fatalf("unpinned audit failed: %v", rep.Failures)
	}
	if rep.KeyPinned || rep.Key == "" {
		t.Fatalf("KeyPinned=%v Key=%q, want false and the adopted key", rep.KeyPinned, rep.Key)
	}
}

// TestAuditWrongKey: pinning a different identity fails every
// generation's key check.
func TestAuditWrongKey(t *testing.T) {
	wo := build(t, 3)
	other, err := signer.LoadOrCreate(vfs.NewMemFS("other", nil), "/")
	if err != nil {
		t.Fatal(err)
	}
	rep := audit(t, wo, func(o *Options) { p := other.Public(); o.Pub = &p })
	wantFailure(t, rep, "different identity")
	for _, g := range rep.Generations {
		if g.KeyOK {
			t.Fatalf("generation %d accepted the wrong key", g.Gen)
		}
	}
}

// TestAuditFlippedLogBit: one flipped bit in any record frame breaks the
// CRC-checked replay, which is an audit failure, not a crash.
func TestAuditFlippedLogBit(t *testing.T) {
	wo := build(t, 4)
	b, err := vfs.ReadFile(wo.lfs, "/log.00000000")
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/3] ^= 0x01 // early byte: inside the signed region
	if err := vfs.WriteFile(wo.lfs, "/log.00000000", b); err != nil {
		t.Fatal(err)
	}
	rep := audit(t, wo, nil)
	wantFailure(t, rep, "replaying log")
}

// TestAuditTruncatedLog: chopping committed frames off the active
// segment leaves a log that replays clean but no longer reaches the
// signed roots — truncation evidence.
func TestAuditTruncatedLog(t *testing.T) {
	wo := newWorld(t, 5)
	// Single tiny generation so every record is in one segment and the
	// signed size is known.
	wo.append(t, 0, 20)
	wo.checkpoint(t)
	names, err := wo.lfs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, e := range names {
		if strings.HasPrefix(e.Name, "log.") {
			seg = "/" + e.Name
		}
	}
	b, err := vfs.ReadFile(wo.lfs, seg)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the trailing half. Whether the cut lands on a frame boundary
	// or not, the replay must end before the signed size.
	if err := vfs.WriteFile(wo.lfs, seg, b[:len(b)/2]); err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(Options{LogFS: wo.lfs, CheckpointFS: wo.ckfs, Volume: volume, Pub: wo.pub()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatalf("truncated log passed audit: %+v", rep)
	}
}

// TestAuditForeignCheckpoints: checkpoints signed over a different log
// (same sizes, different contents) fail the root check — the substituted
// log case.
func TestAuditForeignCheckpoints(t *testing.T) {
	a, b := build(t, 6), newWorld(t, 7)
	for g := 0; g < 3; g++ {
		b.append(t, g*100+5000, 100) // same count, different records
		b.checkpoint(t)
	}
	b.append(t, 5300, 7)
	if err := b.w.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := Audit(Options{LogFS: b.lfs, CheckpointFS: a.ckfs, Volume: volume, Pub: a.pub()})
	if err != nil {
		t.Fatal(err)
	}
	wantFailure(t, rep, "does not match the log")
}

// TestAuditCorruptCheckpointPayload: a flipped bit in a snapshot payload
// fails that generation's integrity check.
func TestAuditCorruptCheckpointPayload(t *testing.T) {
	wo := build(t, 8)
	ents, err := wo.ckfs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	var snap string
	for _, e := range ents {
		if strings.HasSuffix(e.Name, ".db") {
			snap = "/" + e.Name
			break
		}
	}
	if snap == "" {
		t.Fatalf("no payload files in %v", ents)
	}
	b, err := vfs.ReadFile(wo.ckfs, snap)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := vfs.WriteFile(wo.ckfs, snap, b); err != nil {
		t.Fatal(err)
	}
	rep := audit(t, wo, nil)
	if rep.OK {
		t.Fatal("corrupt checkpoint payload passed audit")
	}
}

// TestAuditWithoutCheckpoints: log-only audits still work — everything
// is a CRC-checked unsigned tail.
func TestAuditWithoutCheckpoints(t *testing.T) {
	wo := build(t, 9)
	rep := audit(t, wo, func(o *Options) { o.CheckpointFS = nil })
	if !rep.OK {
		t.Fatalf("log-only audit failed: %v", rep.Failures)
	}
	if rep.SignedSize != 0 || rep.TailRecords != rep.Records {
		t.Fatalf("signed=%d tail=%d records=%d, want all-tail", rep.SignedSize, rep.TailRecords, rep.Records)
	}
}
