// Package vfs provides the file-system substrate for the PASSv2
// reproduction: the VFS interface, an in-memory ext3 stand-in (MemFS), a
// mount table, and the simulated cost model used by the evaluation.
//
// The paper's evaluation ran on a 3GHz Pentium 4 with a 7200rpm disk; this
// reproduction has neither, so elapsed-time benchmarks are measured on a
// simulated clock to which every component charges costs (disk seeks,
// transfers, page copies, network round trips, CPU work). Relative
// overheads — the quantity Table 2 reports — come out of the interference
// patterns the paper describes, not wall time.
package vfs

import (
	"sync"
	"time"
)

// Clock is the simulated time source. Components charge durations to it;
// benchmarks read elapsed simulated time. The zero value is ready to use.
// It is safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// Advance charges d of simulated time.
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

// Now returns elapsed simulated time since the clock's creation.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Reset rewinds the clock to zero (between benchmark runs).
func (c *Clock) Reset() {
	c.mu.Lock()
	c.now = 0
	c.mu.Unlock()
}
