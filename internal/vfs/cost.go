package vfs

import (
	"sync"
	"time"
)

// CostModel describes the simulated storage device and CPU. The defaults
// approximate the paper's testbed (3GHz P4, 7200rpm WD800JB: ~8.9ms seek,
// ~4.2ms rotational delay amortized into the seek figure, ~50MB/s
// transfer).
type CostModel struct {
	// Seek is charged whenever consecutive I/Os touch different objects
	// (disk head movement). Sequential I/O to the same object pays none.
	Seek time.Duration
	// PerByte is the transfer cost per byte moved to or from the device.
	PerByte time.Duration
	// MetadataOp is charged for create/rename/remove/stat/dirent work
	// (journal commit + dentry update).
	MetadataOp time.Duration
	// PageCopy is the per-byte CPU cost of copying a page between caches.
	// Stackable file systems pay it twice (the paper's "double
	// buffering in Lasagna", §7).
	PageCopy time.Duration
	// Extent is the contiguous-allocation run length: streaming I/O to
	// one object pays a fresh seek at every extent boundary (block-group
	// hops on a real ext3 disk). Zero disables extent seeks.
	Extent int64
}

// DefaultCostModel returns parameters approximating the paper's testbed.
func DefaultCostModel() CostModel {
	return CostModel{
		Seek:       9 * time.Millisecond,
		PerByte:    time.Second / (50 << 20), // 50 MB/s
		MetadataOp: 2 * time.Millisecond,     // dentry update + journal commit share
		PageCopy:   5 * time.Nanosecond,      // ~200 MB/s memcpy (2003-era)
		Extent:     64 << 10,                 // 64 KiB contiguous runs
	}
}

// Disk charges I/O costs to a Clock according to a CostModel, tracking
// head position (the last object touched) to model seeks. One Disk backs
// one volume. It is safe for concurrent use; concurrent I/O serializes, as
// on a single spindle.
type Disk struct {
	model CostModel
	clock *Clock

	mu       sync.Mutex
	lastObj  uint64
	runBytes int64 // contiguous bytes since the last seek on lastObj
	reads    uint64
	writes   uint64
	seeks    uint64
	bytes    uint64
}

// NewDisk builds a disk charging to clock. A nil clock yields a disk that
// records statistics but charges nothing.
func NewDisk(model CostModel, clock *Clock) *Disk {
	return &Disk{model: model, clock: clock, lastObj: ^uint64(0)}
}

// ChargeIO charges a read or write of n bytes against object obj (an inode
// or log identifier). Switching objects costs a seek.
func (d *Disk) ChargeIO(obj uint64, n int, write bool) {
	d.mu.Lock()
	var cost time.Duration
	if obj != d.lastObj {
		cost += d.model.Seek
		d.seeks++
		d.lastObj = obj
		d.runBytes = 0
	}
	if d.model.Extent > 0 {
		d.runBytes += int64(n)
		for d.runBytes >= d.model.Extent {
			cost += d.model.Seek
			d.seeks++
			d.runBytes -= d.model.Extent
		}
	}
	cost += time.Duration(n) * d.model.PerByte
	if write {
		d.writes++
	} else {
		d.reads++
	}
	d.bytes += uint64(n)
	clock := d.clock
	d.mu.Unlock()
	if clock != nil {
		clock.Advance(cost)
	}
}

// ChargeMetadata charges one metadata operation.
func (d *Disk) ChargeMetadata() {
	if d.clock != nil {
		d.clock.Advance(d.model.MetadataOp)
	}
}

// ChargeCopy charges the CPU cost of copying n bytes between caches.
func (d *Disk) ChargeCopy(n int) {
	if d.clock != nil {
		d.clock.Advance(time.Duration(n) * d.model.PageCopy)
	}
}

// Charge adds an explicit duration (provenance pipeline CPU, WAP flush
// latencies) to the disk's clock.
func (d *Disk) Charge(dur time.Duration) {
	if d.clock != nil {
		d.clock.Advance(dur)
	}
}

// Stats reports cumulative counters: reads, writes, seeks, bytes.
func (d *Disk) Stats() (reads, writes, seeks, bytes uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes, d.seeks, d.bytes
}

// Clock returns the clock this disk charges, possibly nil.
func (d *Disk) Clock() *Clock { return d.clock }

// Model returns the disk's cost model.
func (d *Disk) Model() CostModel { return d.model }
