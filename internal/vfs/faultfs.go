package vfs

import (
	"errors"
	"sync"
)

// ErrInjectedCrash is returned by every FaultFS operation once the crash
// point has been reached: the simulated process is dead.
var ErrInjectedCrash = errors.New("vfs: injected crash")

// FaultFS wraps an FS and simulates a whole-process crash at a chosen
// mutating operation — the fault-injection layer the checkpoint and
// recovery tests systematically sweep. Mutating operations (writes,
// truncates, syncs, renames, removes, mkdirs, and creating/truncating
// opens) are counted; when the count reaches the configured crash point,
// that operation fails — a crashing WriteAt first persists a prefix of its
// buffer, simulating a torn write — and every subsequent operation, read
// or write, fails with ErrInjectedCrash. Recovery code then reopens the
// inner FS directly, exactly as a restarted process would.
//
// Typical sweep: run the path once with no crash point to learn the total
// mutating-op count N, then rerun it N times crashing at each op in turn.
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	ops     int64
	crashAt int64 // 0 = never crash
	crashed bool
}

// NewFaultFS wraps inner with fault injection disabled (counting only).
func NewFaultFS(inner FS) *FaultFS { return &FaultFS{inner: inner} }

// SetCrashPoint arms the wrapper: the n-th mutating operation from now on
// (1-based, counted from the last Reset) fails and the FS dies. n <= 0
// disarms.
func (f *FaultFS) SetCrashPoint(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAt = n
}

// Reset rearms a dead FS and restarts the mutating-op count.
func (f *FaultFS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops = 0
	f.crashed = false
	f.crashAt = 0
}

// Ops reports mutating operations observed since the last Reset.
func (f *FaultFS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash point has been hit.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// alive gates a read-only operation.
func (f *FaultFS) alive() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrInjectedCrash
	}
	return nil
}

// mutate gates a mutating operation: it counts the op and reports whether
// this op is the crash point (the op must then not take effect, except for
// a torn WriteAt prefix).
func (f *FaultFS) mutate() (crash bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return false, ErrInjectedCrash
	}
	f.ops++
	if f.crashAt > 0 && f.ops >= f.crashAt {
		f.crashed = true
		return true, nil
	}
	return false, nil
}

// FSName names the wrapped file system.
func (f *FaultFS) FSName() string { return f.inner.FSName() }

// Open opens a file; creating or truncating opens count as mutating.
func (f *FaultFS) Open(path string, flags Flags) (File, error) {
	if flags&(OCreate|OTrunc) != 0 {
		crash, err := f.mutate()
		if err != nil {
			return nil, err
		}
		if crash {
			return nil, ErrInjectedCrash
		}
	} else if err := f.alive(); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(path, flags)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// Mkdir creates a directory (mutating).
func (f *FaultFS) Mkdir(path string) error {
	crash, err := f.mutate()
	if err != nil {
		return err
	}
	if crash {
		return ErrInjectedCrash
	}
	return f.inner.Mkdir(path)
}

// MkdirAll creates a directory tree (mutating).
func (f *FaultFS) MkdirAll(path string) error {
	crash, err := f.mutate()
	if err != nil {
		return err
	}
	if crash {
		return ErrInjectedCrash
	}
	return f.inner.MkdirAll(path)
}

// ReadDir lists a directory.
func (f *FaultFS) ReadDir(path string) ([]DirEnt, error) {
	if err := f.alive(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(path)
}

// Stat describes a file.
func (f *FaultFS) Stat(path string) (Stat, error) {
	if err := f.alive(); err != nil {
		return Stat{}, err
	}
	return f.inner.Stat(path)
}

// Rename renames a file (mutating): at the crash point the rename does not
// happen — the "crash just after rename" case is the crash point of the
// operation that follows it.
func (f *FaultFS) Rename(oldPath, newPath string) error {
	crash, err := f.mutate()
	if err != nil {
		return err
	}
	if crash {
		return ErrInjectedCrash
	}
	return f.inner.Rename(oldPath, newPath)
}

// Remove removes a file (mutating).
func (f *FaultFS) Remove(path string) error {
	crash, err := f.mutate()
	if err != nil {
		return err
	}
	if crash {
		return ErrInjectedCrash
	}
	return f.inner.Remove(path)
}

// Sync syncs the file system (mutating: it is a durability point).
func (f *FaultFS) Sync() error {
	crash, err := f.mutate()
	if err != nil {
		return err
	}
	if crash {
		return ErrInjectedCrash
	}
	return f.inner.Sync()
}

// faultFile gates every file operation through the owning FaultFS.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.alive(); err != nil {
		return 0, err
	}
	return f.inner.ReadAt(p, off)
}

// WriteAt is mutating; at the crash point it persists only a prefix of p —
// the torn write a real crash mid-write leaves behind.
func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	crash, err := f.fs.mutate()
	if err != nil {
		return 0, err
	}
	if crash {
		if n := len(p) / 2; n > 0 {
			f.inner.WriteAt(p[:n], off)
		}
		return 0, ErrInjectedCrash
	}
	return f.inner.WriteAt(p, off)
}

func (f *faultFile) Truncate(size int64) error {
	crash, err := f.fs.mutate()
	if err != nil {
		return err
	}
	if crash {
		return ErrInjectedCrash
	}
	return f.inner.Truncate(size)
}

func (f *faultFile) Size() int64 { return f.inner.Size() }

func (f *faultFile) Ino() uint64 { return f.inner.Ino() }

// Sync is mutating: it is the durability point crashes are injected
// around.
func (f *faultFile) Sync() error {
	crash, err := f.fs.mutate()
	if err != nil {
		return err
	}
	if crash {
		return ErrInjectedCrash
	}
	return f.inner.Sync()
}

// Close is not a durability point; a dead FS still "closes" handles.
func (f *faultFile) Close() error { return f.inner.Close() }
