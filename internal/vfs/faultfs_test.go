package vfs

import (
	"errors"
	"testing"
)

// TestFaultFSCrashPoint sweeps a small write sequence and checks the op
// counting contract: crash at op k leaves exactly the first k-1 mutations
// applied (plus the torn prefix of a crashing write), and everything after
// the crash fails.
func TestFaultFSCrashPoint(t *testing.T) {
	run := func(f *FaultFS) error {
		file, err := f.Open("/a", OCreate|ORdWr) // op 1
		if err != nil {
			return err
		}
		if _, err := file.WriteAt([]byte("hello world!"), 0); err != nil { // op 2
			return err
		}
		if err := file.Sync(); err != nil { // op 3
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
		return f.Rename("/a", "/b") // op 4
	}

	count := NewFaultFS(NewMemFS("m", nil))
	if err := run(count); err != nil {
		t.Fatal(err)
	}
	total := count.Ops()
	if total != 4 {
		t.Fatalf("counted %d mutating ops, want 4", total)
	}

	for k := int64(1); k <= total; k++ {
		inner := NewMemFS("m", nil)
		f := NewFaultFS(inner)
		f.SetCrashPoint(k)
		err := run(f)
		if !errors.Is(err, ErrInjectedCrash) {
			t.Fatalf("crash at %d: got %v, want ErrInjectedCrash", k, err)
		}
		if !f.Crashed() {
			t.Fatalf("crash at %d not marked", k)
		}
		// Post-crash: all ops fail, reads included.
		if _, err := f.Open("/a", ORdOnly); !errors.Is(err, ErrInjectedCrash) {
			t.Fatalf("post-crash open: %v", err)
		}
		// Inner state reflects the prefix of applied ops.
		_, statA := inner.Stat("/a")
		_, statB := inner.Stat("/b")
		switch k {
		case 1: // create did not happen
			if statA == nil || statB == nil {
				t.Fatalf("crash at 1: file exists")
			}
		case 2: // created, write torn to a prefix
			if statA != nil {
				t.Fatalf("crash at 2: /a missing")
			}
			data, _ := ReadFile(inner, "/a")
			if len(data) >= len("hello world!") {
				t.Fatalf("crash at 2: full write survived (%d bytes)", len(data))
			}
		case 3: // write complete, sync did not matter for memfs
			data, _ := ReadFile(inner, "/a")
			if string(data) != "hello world!" {
				t.Fatalf("crash at 3: content %q", data)
			}
		case 4: // rename did not happen
			if statA != nil || statB == nil {
				t.Fatalf("crash at 4: rename happened")
			}
		}
	}
}

// TestDirFSRoundTrip exercises the OS adapter against a real temp
// directory: create, write, rename, list, reopen, remove.
func TestDirFSRoundTrip(t *testing.T) {
	d, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.MkdirAll("/sub/dir"); err != nil {
		t.Fatal(err)
	}
	f, err := d.Open("/sub/dir/x", OCreate|ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	if got := f.Size(); got != 3 {
		t.Fatalf("size %d, want 3", got)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := d.Rename("/sub/dir/x", "/sub/dir/y"); err != nil {
		t.Fatal(err)
	}
	ents, err := d.ReadDir("/sub/dir")
	if err != nil || len(ents) != 1 || ents[0].Name != "y" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	data, err := ReadFile(d, "/sub/dir/y")
	if err != nil || string(data) != "abc" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if _, err := d.Open("/nope", ORdOnly); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing file: %v, want ErrNotExist", err)
	}
	if _, err := d.ReadDir("/nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing dir: %v, want ErrNotExist", err)
	}
	if err := d.Remove("/sub/dir/y"); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
}
