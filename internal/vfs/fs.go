package vfs

import (
	"errors"
	"io"
	gopath "path"
	"strings"

	"passv2/internal/pnode"
	"passv2/internal/record"
)

// Errors returned by file systems.
var (
	ErrNotExist   = errors.New("vfs: no such file or directory")
	ErrExist      = errors.New("vfs: file exists")
	ErrIsDir      = errors.New("vfs: is a directory")
	ErrNotDir     = errors.New("vfs: not a directory")
	ErrNotEmpty   = errors.New("vfs: directory not empty")
	ErrInvalid    = errors.New("vfs: invalid argument")
	ErrReadOnly   = errors.New("vfs: read-only")
	ErrCrossMount = errors.New("vfs: rename across mount points")
)

// Open flags, a subset of POSIX.
type Flags uint32

const (
	ORdOnly Flags = 0
	OWrOnly Flags = 1 << iota
	ORdWr
	OCreate
	OTrunc
	OAppend
	OExcl
)

// May reports whether the flags permit reading / writing.
func (f Flags) MayRead() bool { return f&OWrOnly == 0 }

// MayWrite reports whether the open flags permit writing.
func (f Flags) MayWrite() bool { return f&(OWrOnly|ORdWr|OAppend|OTrunc) != 0 }

// Stat describes a file or directory.
type Stat struct {
	Ino   uint64
	Size  int64
	IsDir bool
	Nlink int
}

// DirEnt is one directory entry.
type DirEnt struct {
	Name  string
	IsDir bool
	Ino   uint64
}

// File is an open file handle.
type File interface {
	io.Closer
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	Size() int64
	Ino() uint64
	Sync() error
}

// FS is the virtual file system interface. Paths are slash-separated and
// relative to the FS root ("" or "/" is the root directory). All
// implementations must be safe for concurrent use.
type FS interface {
	FSName() string
	Open(path string, flags Flags) (File, error)
	Mkdir(path string) error
	MkdirAll(path string) error
	ReadDir(path string) ([]DirEnt, error)
	Stat(path string) (Stat, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	Sync() error
}

// PassFile extends File with the DPAPI inode operations (§5.6: Lasagna
// implements pass_read, pass_write and pass_freeze as inode operations).
type PassFile interface {
	File
	Ref() pnode.Ref
	PassRead(p []byte, off int64) (int, pnode.Ref, error)
	PassWrite(p []byte, off int64, b *record.Bundle) (int, error)
	PassFreeze() (pnode.Version, error)
	PassSync() error
}

// PassFS extends FS with the DPAPI superblock operations (pass_mkobj and
// pass_reviveobj). A file system that implements PassFS is a PASS-enabled
// volume; files it opens implement PassFile.
type PassFS interface {
	FS
	PassMkobj() (PassFile, error)
	PassReviveObj(ref pnode.Ref) (PassFile, error)
	// VolumeID distinguishes PASS volumes for the distributor.
	VolumeID() uint16
}

// IsPass reports whether fs is a PASS-enabled volume.
func IsPass(fs FS) bool {
	_, ok := fs.(PassFS)
	return ok
}

// Clean canonicalizes a path: slash-separated, no trailing slash, always
// starting with "/".
func Clean(p string) string {
	if p == "" {
		return "/"
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return gopath.Clean(p)
}

// Split returns the directory and base of a cleaned path.
func Split(p string) (dir, base string) {
	p = Clean(p)
	if p == "/" {
		return "/", ""
	}
	dir, base = gopath.Split(p)
	if dir != "/" {
		dir = strings.TrimSuffix(dir, "/")
	}
	return dir, base
}

// Base returns the last element of the path.
func Base(p string) string { return gopath.Base(Clean(p)) }

// Join joins path elements and cleans the result.
func Join(elems ...string) string { return Clean(gopath.Join(elems...)) }
