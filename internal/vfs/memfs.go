package vfs

import (
	"sort"
	"strings"
	"sync"
)

// MemFS is the ext3 stand-in: an inode-based in-memory file system with
// directories, rename, unlink and open-file semantics (an unlinked file
// stays readable through open handles). All I/O charges a Disk, so MemFS
// doubles as the baseline file system in the evaluation.
type MemFS struct {
	name string
	disk *Disk

	mu      sync.Mutex
	nextIno uint64
	root    *mnode
}

type mnode struct {
	ino      uint64
	isDir    bool
	data     []byte
	children map[string]*mnode
	nlink    int
	resident bool // fully read once: further reads hit the page cache
}

// NewMemFS creates an empty file system. disk may be nil (no cost
// charging), useful in unit tests.
func NewMemFS(name string, disk *Disk) *MemFS {
	fs := &MemFS{name: name, disk: disk, nextIno: 1}
	fs.root = &mnode{ino: 1, isDir: true, children: make(map[string]*mnode), nlink: 2}
	return fs
}

// FSName returns the volume name.
func (fs *MemFS) FSName() string { return fs.name }

// Disk returns the disk this volume charges, possibly nil.
func (fs *MemFS) Disk() *Disk { return fs.disk }

func (fs *MemFS) chargeMeta() {
	if fs.disk != nil {
		fs.disk.ChargeMetadata()
	}
}

func (fs *MemFS) chargeIO(ino uint64, n int, write bool) {
	if fs.disk != nil {
		fs.disk.ChargeIO(ino, n, write)
	}
}

// walk resolves a cleaned path to its node. Caller holds fs.mu.
func (fs *MemFS) walk(path string) (*mnode, error) {
	path = Clean(path)
	if path == "/" {
		return fs.root, nil
	}
	cur := fs.root
	for _, part := range strings.Split(strings.TrimPrefix(path, "/"), "/") {
		if !cur.isDir {
			return nil, ErrNotDir
		}
		next, ok := cur.children[part]
		if !ok {
			return nil, ErrNotExist
		}
		cur = next
	}
	return cur, nil
}

// walkParent resolves the parent directory of a cleaned path.
func (fs *MemFS) walkParent(path string) (*mnode, string, error) {
	dir, base := Split(path)
	if base == "" {
		return nil, "", ErrInvalid
	}
	parent, err := fs.walk(dir)
	if err != nil {
		return nil, "", err
	}
	if !parent.isDir {
		return nil, "", ErrNotDir
	}
	return parent, base, nil
}

// Open opens (and with OCreate, creates) a file.
func (fs *MemFS) Open(path string, flags Flags) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.walk(path)
	switch {
	case err == nil:
		if n.isDir {
			return nil, ErrIsDir
		}
		if flags&OExcl != 0 && flags&OCreate != 0 {
			return nil, ErrExist
		}
	case err == ErrNotExist && flags&OCreate != 0:
		parent, base, perr := fs.walkParent(path)
		if perr != nil {
			return nil, perr
		}
		n = &mnode{ino: fs.allocIno(), nlink: 1}
		parent.children[base] = n
		fs.chargeMeta()
	default:
		return nil, err
	}
	if flags&OTrunc != 0 {
		n.data = nil
		fs.chargeMeta()
	}
	return &memFile{fs: fs, node: n}, nil
}

func (fs *MemFS) allocIno() uint64 {
	fs.nextIno++
	return fs.nextIno
}

// Mkdir creates a directory; the parent must exist.
func (fs *MemFS) Mkdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mkdirLocked(path)
}

func (fs *MemFS) mkdirLocked(path string) error {
	parent, base, err := fs.walkParent(path)
	if err != nil {
		return err
	}
	if _, ok := parent.children[base]; ok {
		return ErrExist
	}
	parent.children[base] = &mnode{ino: fs.allocIno(), isDir: true, children: make(map[string]*mnode), nlink: 2}
	fs.chargeMeta()
	return nil
}

// MkdirAll creates a directory and any missing parents.
func (fs *MemFS) MkdirAll(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	path = Clean(path)
	if path == "/" {
		return nil
	}
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	cur := "/"
	for _, part := range parts {
		cur = Join(cur, part)
		n, err := fs.walk(cur)
		if err == ErrNotExist {
			if err := fs.mkdirLocked(cur); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			return err
		}
		if !n.isDir {
			return ErrNotDir
		}
	}
	return nil
}

// ReadDir lists a directory in name order.
func (fs *MemFS) ReadDir(path string) ([]DirEnt, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.walk(path)
	if err != nil {
		return nil, err
	}
	if !n.isDir {
		return nil, ErrNotDir
	}
	out := make([]DirEnt, 0, len(n.children))
	for name, c := range n.children {
		out = append(out, DirEnt{Name: name, IsDir: c.isDir, Ino: c.ino})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	fs.chargeMeta()
	return out, nil
}

// Stat describes a path.
func (fs *MemFS) Stat(path string) (Stat, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n, err := fs.walk(path)
	if err != nil {
		return Stat{}, err
	}
	fs.chargeMeta()
	return Stat{Ino: n.ino, Size: int64(len(n.data)), IsDir: n.isDir, Nlink: n.nlink}, nil
}

// Rename moves a file or directory. Overwrites an existing file target.
func (fs *MemFS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	op, ob, err := fs.walkParent(oldPath)
	if err != nil {
		return err
	}
	n, ok := op.children[ob]
	if !ok {
		return ErrNotExist
	}
	np, nb, err := fs.walkParent(newPath)
	if err != nil {
		return err
	}
	if tgt, ok := np.children[nb]; ok {
		if tgt.isDir {
			if len(tgt.children) > 0 {
				return ErrNotEmpty
			}
		}
		if tgt.isDir != n.isDir {
			if tgt.isDir {
				return ErrIsDir
			}
			return ErrNotDir
		}
	}
	delete(op.children, ob)
	np.children[nb] = n
	fs.chargeMeta()
	return nil
}

// Remove unlinks a file or removes an empty directory.
func (fs *MemFS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, base, err := fs.walkParent(path)
	if err != nil {
		return err
	}
	n, ok := parent.children[base]
	if !ok {
		return ErrNotExist
	}
	if n.isDir && len(n.children) > 0 {
		return ErrNotEmpty
	}
	delete(parent.children, base)
	n.nlink--
	fs.chargeMeta()
	return nil
}

// Sync is a no-op for the in-memory baseline.
func (fs *MemFS) Sync() error { return nil }

// TotalBytes reports the sum of all file sizes (used by the space-overhead
// benchmarks as the "ext3" data footprint).
func (fs *MemFS) TotalBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return totalBytes(fs.root)
}

func totalBytes(n *mnode) int64 {
	if !n.isDir {
		return int64(len(n.data))
	}
	var sum int64
	for _, c := range n.children {
		sum += totalBytes(c)
	}
	return sum
}

// memFile is an open MemFS file.
type memFile struct {
	fs   *MemFS
	node *mnode
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 {
		return 0, ErrInvalid
	}
	if off >= int64(len(f.node.data)) {
		return 0, nil
	}
	n := copy(p, f.node.data[off:])
	if f.node.resident {
		// Page-cache hit: no disk traffic, just the copy.
		if f.fs.disk != nil {
			f.fs.disk.ChargeCopy(n)
		}
	} else {
		f.fs.chargeIO(f.node.ino, n, false)
		if off+int64(n) >= int64(len(f.node.data)) {
			f.node.resident = true
		}
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 {
		return 0, ErrInvalid
	}
	end := off + int64(len(p))
	if oldLen := int64(len(f.node.data)); end > oldLen {
		if end > int64(cap(f.node.data)) {
			// Grow with spare capacity: sized exactly, every buffered
			// append re-copies the whole file and large payload writes
			// go quadratic.
			newCap := int64(cap(f.node.data))*2 + 1
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, f.node.data)
			f.node.data = grown
		} else {
			// Re-sliced capacity may hold bytes from before a Truncate;
			// a file hole must read back as zeros.
			f.node.data = f.node.data[:end]
			for i := oldLen; i < off; i++ {
				f.node.data[i] = 0
			}
		}
	}
	copy(f.node.data[off:], p)
	f.node.resident = false
	f.fs.chargeIO(f.node.ino, len(p), true)
	return len(p), nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if size < 0 {
		return ErrInvalid
	}
	if size <= int64(len(f.node.data)) {
		f.node.data = f.node.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, f.node.data)
		f.node.data = grown
	}
	f.fs.chargeMeta()
	return nil
}

func (f *memFile) Size() int64 {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.node.data))
}

func (f *memFile) Ino() uint64 { return f.node.ino }

func (f *memFile) Sync() error { return nil }

func (f *memFile) Close() error { return nil }

var _ FS = (*MemFS)(nil)
var _ File = (*memFile)(nil)

// ReadFile is a convenience: read a whole file from fs.
func ReadFile(fs FS, path string) ([]byte, error) {
	f, err := fs.Open(path, ORdOnly)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, f.Size())
	n, err := f.ReadAt(buf, 0)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// WriteFile is a convenience: create/overwrite a whole file on fs.
func WriteFile(fs FS, path string, data []byte) error {
	f, err := fs.Open(path, OCreate|OTrunc|ORdWr)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteAt(data, 0); err != nil {
		return err
	}
	return nil
}
