package vfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestPathHelpers(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "/"},
		{"/", "/"},
		{"a/b", "/a/b"},
		{"/a/b/", "/a/b"},
		{"/a/./b", "/a/b"},
		{"/a/../b", "/b"},
		{"//a//b", "/a/b"},
	}
	for _, c := range cases {
		if got := Clean(c.in); got != c.want {
			t.Errorf("Clean(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	dir, base := Split("/a/b/c")
	if dir != "/a/b" || base != "c" {
		t.Errorf("Split = %q,%q", dir, base)
	}
	dir, base = Split("/c")
	if dir != "/" || base != "c" {
		t.Errorf("Split(/c) = %q,%q", dir, base)
	}
	if Join("/a", "b", "c") != "/a/b/c" {
		t.Error("Join failed")
	}
}

func TestCreateWriteRead(t *testing.T) {
	fs := NewMemFS("test", nil)
	if err := WriteFile(fs, "/hello.txt", []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(fs, "/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "world" {
		t.Fatalf("read %q", got)
	}
}

func TestOpenErrors(t *testing.T) {
	fs := NewMemFS("test", nil)
	if _, err := fs.Open("/missing", ORdOnly); !errors.Is(err, ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/d", ORdOnly); !errors.Is(err, ErrIsDir) {
		t.Fatalf("want ErrIsDir, got %v", err)
	}
	if err := WriteFile(fs, "/f", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/f", OCreate|OExcl); !errors.Is(err, ErrExist) {
		t.Fatalf("want ErrExist, got %v", err)
	}
	if _, err := fs.Open("/f/child", OCreate); !errors.Is(err, ErrNotDir) {
		t.Fatalf("want ErrNotDir, got %v", err)
	}
	if _, err := fs.Open("/nodir/f", OCreate); !errors.Is(err, ErrNotExist) {
		t.Fatalf("want ErrNotExist, got %v", err)
	}
}

func TestSparseWriteAndOffsets(t *testing.T) {
	fs := NewMemFS("test", nil)
	f, err := fs.Open("/sparse", OCreate|ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("xy"), 10); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 12 {
		t.Fatalf("size = %d, want 12", f.Size())
	}
	buf := make([]byte, 12)
	n, err := f.ReadAt(buf, 0)
	if err != nil || n != 12 {
		t.Fatalf("read %d, %v", n, err)
	}
	if !bytes.Equal(buf[:10], make([]byte, 10)) {
		t.Fatal("hole not zero-filled")
	}
	if string(buf[10:]) != "xy" {
		t.Fatal("tail wrong")
	}
	// Read past EOF returns 0 bytes, no error (simulated short read).
	if n, err := f.ReadAt(buf, 100); n != 0 || err != nil {
		t.Fatalf("past-EOF read = %d, %v", n, err)
	}
	if _, err := f.ReadAt(buf, -1); !errors.Is(err, ErrInvalid) {
		t.Fatal("negative offset must fail")
	}
}

func TestTruncate(t *testing.T) {
	fs := NewMemFS("test", nil)
	f, _ := fs.Open("/t", OCreate|ORdWr)
	f.WriteAt([]byte("abcdef"), 0)
	if err := f.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 3 {
		t.Fatalf("size %d", f.Size())
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	f.ReadAt(buf, 0)
	if string(buf) != "abc\x00\x00" {
		t.Fatalf("got %q", buf)
	}
}

func TestMkdirAllAndReadDir(t *testing.T) {
	fs := NewMemFS("test", nil)
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/a/b/c"); err != nil {
		t.Fatal("MkdirAll must be idempotent:", err)
	}
	WriteFile(fs, "/a/b/z.txt", []byte("1"))
	WriteFile(fs, "/a/b/a.txt", []byte("2"))
	ents, err := fs.ReadDir("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name)
	}
	want := []string{"a.txt", "c", "z.txt"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("ReadDir = %v, want %v", names, want)
	}
	if err := fs.MkdirAll("/a/b/z.txt/q"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("MkdirAll through file: %v", err)
	}
}

func TestRename(t *testing.T) {
	fs := NewMemFS("test", nil)
	WriteFile(fs, "/src", []byte("data"))
	if err := fs.Rename("/src", "/dst"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/src"); !errors.Is(err, ErrNotExist) {
		t.Fatal("source must be gone")
	}
	got, _ := ReadFile(fs, "/dst")
	if string(got) != "data" {
		t.Fatal("data lost in rename")
	}
	// Overwriting rename (the patch(1) pattern from the Mercurial bench).
	WriteFile(fs, "/src2", []byte("new"))
	if err := fs.Rename("/src2", "/dst"); err != nil {
		t.Fatal(err)
	}
	got, _ = ReadFile(fs, "/dst")
	if string(got) != "new" {
		t.Fatal("overwrite rename failed")
	}
	if err := fs.Rename("/missing", "/x"); !errors.Is(err, ErrNotExist) {
		t.Fatal("rename missing must fail")
	}
	fs.MkdirAll("/full/sub")
	if err := fs.Rename("/dst", "/full"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("rename onto non-empty dir: %v", err)
	}
}

func TestRemove(t *testing.T) {
	fs := NewMemFS("test", nil)
	WriteFile(fs, "/f", []byte("x"))
	fs.MkdirAll("/d/sub")
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatal("removing non-empty dir must fail")
	}
	if err := fs.Remove("/d/sub"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/f"); !errors.Is(err, ErrNotExist) {
		t.Fatal("double remove must fail")
	}
}

func TestOpenFileSurvivesUnlink(t *testing.T) {
	fs := NewMemFS("test", nil)
	WriteFile(fs, "/f", []byte("keep"))
	f, err := fs.Open("/f", ORdOnly)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	n, err := f.ReadAt(buf, 0)
	if err != nil || string(buf[:n]) != "keep" {
		t.Fatalf("unlinked file unreadable: %q %v", buf[:n], err)
	}
}

func TestTotalBytes(t *testing.T) {
	fs := NewMemFS("test", nil)
	WriteFile(fs, "/a", make([]byte, 100))
	fs.MkdirAll("/d")
	WriteFile(fs, "/d/b", make([]byte, 50))
	if got := fs.TotalBytes(); got != 150 {
		t.Fatalf("TotalBytes = %d, want 150", got)
	}
}

func TestInodesDistinct(t *testing.T) {
	fs := NewMemFS("test", nil)
	WriteFile(fs, "/a", nil)
	WriteFile(fs, "/b", nil)
	sa, _ := fs.Stat("/a")
	sb, _ := fs.Stat("/b")
	if sa.Ino == sb.Ino {
		t.Fatal("inode numbers must be distinct")
	}
}

func TestPropertyWriteReadRoundTrip(t *testing.T) {
	fs := NewMemFS("prop", nil)
	i := 0
	f := func(data []byte, off uint16) bool {
		i++
		path := fmt.Sprintf("/f%d", i)
		fh, err := fs.Open(path, OCreate|ORdWr)
		if err != nil {
			return false
		}
		defer fh.Close()
		if _, err := fh.WriteAt(data, int64(off)); err != nil {
			return false
		}
		buf := make([]byte, len(data))
		n, err := fh.ReadAt(buf, int64(off))
		if err != nil {
			return false
		}
		return bytes.Equal(buf[:n], data) && n == len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
