package vfs

import (
	"errors"
	"sort"
	"strings"
	"sync"
)

// MountTable maps absolute path prefixes to file systems, the way the
// kernel's namespace does. Longest-prefix match wins, so "/mnt/nfs1" can
// shadow "/".
type MountTable struct {
	mu     sync.RWMutex
	mounts []mount // sorted by descending prefix length
}

type mount struct {
	prefix string
	fs     FS
}

// ErrNoMount reports path resolution with no root mount.
var ErrNoMount = errors.New("vfs: no file system mounted for path")

// NewMountTable returns an empty table.
func NewMountTable() *MountTable { return &MountTable{} }

// Mount attaches fs at prefix. Mounting over an existing prefix replaces
// it.
func (mt *MountTable) Mount(prefix string, fs FS) {
	prefix = Clean(prefix)
	mt.mu.Lock()
	defer mt.mu.Unlock()
	for i := range mt.mounts {
		if mt.mounts[i].prefix == prefix {
			mt.mounts[i].fs = fs
			return
		}
	}
	mt.mounts = append(mt.mounts, mount{prefix: prefix, fs: fs})
	sort.Slice(mt.mounts, func(i, j int) bool {
		return len(mt.mounts[i].prefix) > len(mt.mounts[j].prefix)
	})
}

// Unmount detaches the mount at prefix, if present.
func (mt *MountTable) Unmount(prefix string) {
	prefix = Clean(prefix)
	mt.mu.Lock()
	defer mt.mu.Unlock()
	for i := range mt.mounts {
		if mt.mounts[i].prefix == prefix {
			mt.mounts = append(mt.mounts[:i], mt.mounts[i+1:]...)
			return
		}
	}
}

// Resolve maps an absolute path to (fs, path-within-fs).
func (mt *MountTable) Resolve(path string) (FS, string, error) {
	path = Clean(path)
	mt.mu.RLock()
	defer mt.mu.RUnlock()
	for _, m := range mt.mounts {
		if m.prefix == "/" {
			return m.fs, path, nil
		}
		if path == m.prefix || strings.HasPrefix(path, m.prefix+"/") {
			rel := strings.TrimPrefix(path, m.prefix)
			if rel == "" {
				rel = "/"
			}
			return m.fs, rel, nil
		}
	}
	return nil, "", ErrNoMount
}

// Mounts lists the mount points, longest prefix first.
func (mt *MountTable) Mounts() []string {
	mt.mu.RLock()
	defer mt.mu.RUnlock()
	out := make([]string, len(mt.mounts))
	for i, m := range mt.mounts {
		out[i] = m.prefix
	}
	return out
}

// FSAt returns the file system mounted exactly at prefix, or nil.
func (mt *MountTable) FSAt(prefix string) FS {
	prefix = Clean(prefix)
	mt.mu.RLock()
	defer mt.mu.RUnlock()
	for _, m := range mt.mounts {
		if m.prefix == prefix {
			return m.fs
		}
	}
	return nil
}

// SameMount reports whether two absolute paths resolve to the same mount.
func (mt *MountTable) SameMount(a, b string) bool {
	fa, _, ea := mt.Resolve(a)
	fb, _, eb := mt.Resolve(b)
	return ea == nil && eb == nil && fa == fb
}
