package vfs

import (
	"errors"
	"testing"
	"time"
)

func TestMountResolveLongestPrefix(t *testing.T) {
	root := NewMemFS("root", nil)
	nfs1 := NewMemFS("nfs1", nil)
	nfs2 := NewMemFS("nfs2", nil)
	mt := NewMountTable()
	mt.Mount("/", root)
	mt.Mount("/mnt/nfs1", nfs1)
	mt.Mount("/mnt/nfs1/deep", nfs2)

	cases := []struct {
		path   string
		wantFS FS
		rel    string
	}{
		{"/etc/passwd", root, "/etc/passwd"},
		{"/mnt/nfs1", nfs1, "/"},
		{"/mnt/nfs1/a/b", nfs1, "/a/b"},
		{"/mnt/nfs1/deep/x", nfs2, "/x"},
		{"/mnt/nfs1deep", root, "/mnt/nfs1deep"}, // not a prefix match
	}
	for _, c := range cases {
		fs, rel, err := mt.Resolve(c.path)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", c.path, err)
		}
		if fs != c.wantFS || rel != c.rel {
			t.Errorf("Resolve(%q) = %s,%q want %s,%q", c.path, fs.FSName(), rel, c.wantFS.FSName(), c.rel)
		}
	}
}

func TestMountNoRoot(t *testing.T) {
	mt := NewMountTable()
	mt.Mount("/mnt", NewMemFS("m", nil))
	if _, _, err := mt.Resolve("/other"); !errors.Is(err, ErrNoMount) {
		t.Fatalf("want ErrNoMount, got %v", err)
	}
}

func TestMountReplaceAndUnmount(t *testing.T) {
	a, b := NewMemFS("a", nil), NewMemFS("b", nil)
	mt := NewMountTable()
	mt.Mount("/", a)
	mt.Mount("/", b)
	fs, _, _ := mt.Resolve("/x")
	if fs != b {
		t.Fatal("remount must replace")
	}
	mt.Mount("/sub", a)
	mt.Unmount("/sub")
	fs, _, _ = mt.Resolve("/sub/x")
	if fs != b {
		t.Fatal("unmount must fall back to root")
	}
	if got := mt.FSAt("/"); got != b {
		t.Fatal("FSAt wrong")
	}
	if got := mt.FSAt("/sub"); got != nil {
		t.Fatal("FSAt after unmount should be nil")
	}
}

func TestSameMount(t *testing.T) {
	mt := NewMountTable()
	mt.Mount("/", NewMemFS("root", nil))
	mt.Mount("/mnt", NewMemFS("m", nil))
	if !mt.SameMount("/a", "/b") {
		t.Fatal("same root mount")
	}
	if mt.SameMount("/a", "/mnt/b") {
		t.Fatal("different mounts")
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(5 * time.Millisecond)
	c.Advance(-time.Second) // negative is ignored
	c.Advance(5 * time.Millisecond)
	if c.Now() != 10*time.Millisecond {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestDiskChargesSeeksOnObjectSwitch(t *testing.T) {
	var clk Clock
	model := CostModel{Seek: time.Millisecond, PerByte: 0, MetadataOp: 0}
	d := NewDisk(model, &clk)
	d.ChargeIO(1, 100, true)
	d.ChargeIO(1, 100, true) // sequential: no seek
	d.ChargeIO(2, 100, true) // switch: seek
	d.ChargeIO(1, 100, false)
	_, _, seeks, bytes := d.Stats()
	if seeks != 3 {
		t.Fatalf("seeks = %d, want 3 (initial + 2 switches)", seeks)
	}
	if bytes != 400 {
		t.Fatalf("bytes = %d", bytes)
	}
	if clk.Now() != 3*time.Millisecond {
		t.Fatalf("clock = %v", clk.Now())
	}
}

func TestDiskTransferCost(t *testing.T) {
	var clk Clock
	d := NewDisk(CostModel{PerByte: time.Microsecond}, &clk)
	d.ChargeIO(1, 1000, true)
	if clk.Now() != time.Millisecond {
		t.Fatalf("clock = %v", clk.Now())
	}
}

func TestDiskNilClockSafe(t *testing.T) {
	d := NewDisk(DefaultCostModel(), nil)
	d.ChargeIO(1, 10, true)
	d.ChargeMetadata()
	d.ChargeCopy(100)
	r, w, _, _ := d.Stats()
	if r != 0 || w != 1 {
		t.Fatalf("stats = %d,%d", r, w)
	}
}

func TestMemFSChargesDisk(t *testing.T) {
	var clk Clock
	d := NewDisk(DefaultCostModel(), &clk)
	fs := NewMemFS("bench", d)
	WriteFile(fs, "/f", make([]byte, 4096))
	if clk.Now() == 0 {
		t.Fatal("writes must charge the clock")
	}
}
