package vfs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// DirFS adapts a directory on the host operating system's file system to
// the FS interface, so components written against vfs — the provenance log
// writer/scanner and the checkpoint store — can persist real files that
// survive process restarts. That is what lets cmd/passd tail a log
// directory and keep durable checkpoints across a SIGKILL.
//
// Paths are interpreted relative to the root directory (vfs.Clean keeps
// them from escaping it). Inode numbers are not surfaced (Ino returns 0),
// so a DirFS is not suitable as a Lasagna lower volume, whose pnode
// bindings key off inodes; it is meant for logs and checkpoints, which
// never look at Ino.
type DirFS struct {
	root string
	name string
}

// NewDirFS returns an FS rooted at the OS directory root, creating it if
// needed.
func NewDirFS(root string) (*DirFS, error) {
	if err := os.MkdirAll(root, 0o777); err != nil {
		return nil, err
	}
	return &DirFS{root: root, name: "dir:" + root}, nil
}

// FSName names the file system after its root directory.
func (d *DirFS) FSName() string { return d.name }

// path maps a vfs path to the host path.
func (d *DirFS) path(p string) string {
	return filepath.Join(d.root, filepath.FromSlash(Clean(p)))
}

// mapErr translates OS errors to the vfs sentinel errors callers test for.
func mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, fs.ErrNotExist):
		return fmt.Errorf("%w: %v", ErrNotExist, err)
	case errors.Is(err, fs.ErrExist):
		return fmt.Errorf("%w: %v", ErrExist, err)
	default:
		return err
	}
}

// Open opens (or creates) a file.
func (d *DirFS) Open(path string, flags Flags) (File, error) {
	mode := os.O_RDONLY
	switch {
	case flags&OWrOnly != 0:
		mode = os.O_WRONLY
	case flags&ORdWr != 0 || flags&(OCreate|OTrunc) != 0:
		mode = os.O_RDWR
	}
	if flags&OCreate != 0 {
		mode |= os.O_CREATE
	}
	if flags&OTrunc != 0 {
		mode |= os.O_TRUNC
	}
	if flags&OExcl != 0 {
		mode |= os.O_EXCL
	}
	f, err := os.OpenFile(d.path(path), mode, 0o666)
	if err != nil {
		return nil, mapErr(err)
	}
	return &osFile{f: f}, nil
}

// Mkdir creates one directory.
func (d *DirFS) Mkdir(path string) error { return mapErr(os.Mkdir(d.path(path), 0o777)) }

// MkdirAll creates a directory and any missing parents.
func (d *DirFS) MkdirAll(path string) error { return mapErr(os.MkdirAll(d.path(path), 0o777)) }

// ReadDir lists a directory.
func (d *DirFS) ReadDir(path string) ([]DirEnt, error) {
	ents, err := os.ReadDir(d.path(path))
	if err != nil {
		return nil, mapErr(err)
	}
	out := make([]DirEnt, 0, len(ents))
	for _, e := range ents {
		out = append(out, DirEnt{Name: e.Name(), IsDir: e.IsDir()})
	}
	return out, nil
}

// Stat describes a file or directory.
func (d *DirFS) Stat(path string) (Stat, error) {
	fi, err := os.Stat(d.path(path))
	if err != nil {
		return Stat{}, mapErr(err)
	}
	return Stat{Size: fi.Size(), IsDir: fi.IsDir(), Nlink: 1}, nil
}

// Rename renames a file; on POSIX hosts the rename is atomic, which is
// what the checkpoint store's commit protocol relies on.
func (d *DirFS) Rename(oldPath, newPath string) error {
	return mapErr(os.Rename(d.path(oldPath), d.path(newPath)))
}

// Remove removes a file or empty directory.
func (d *DirFS) Remove(path string) error { return mapErr(os.Remove(d.path(path))) }

// Sync syncs the root directory itself, making completed renames durable.
// Hosts that cannot fsync a directory are tolerated silently.
func (d *DirFS) Sync() error {
	f, err := os.Open(d.root)
	if err != nil {
		return nil
	}
	defer f.Close()
	f.Sync()
	return nil
}

// osFile adapts *os.File to vfs.File.
type osFile struct {
	f *os.File
}

func (f *osFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.f.ReadAt(p, off)
	if err == io.EOF && n > 0 {
		err = nil
	}
	return n, err
}

func (f *osFile) WriteAt(p []byte, off int64) (int, error) { return f.f.WriteAt(p, off) }

func (f *osFile) Truncate(size int64) error { return f.f.Truncate(size) }

// Size stats the file on every call: external writers (another process
// appending to a shared log) move it between calls.
func (f *osFile) Size() int64 {
	fi, err := f.f.Stat()
	if err != nil {
		return 0
	}
	return fi.Size()
}

// Ino is not surfaced for OS files; see the DirFS doc comment.
func (f *osFile) Ino() uint64 { return 0 }

func (f *osFile) Sync() error { return f.f.Sync() }

func (f *osFile) Close() error { return f.f.Close() }
