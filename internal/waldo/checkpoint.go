package waldo

import (
	"sort"

	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// Checkpoint support: a CheckpointState is the consistent cut the
// checkpoint store (passv2/internal/checkpoint) persists — a pinned
// database view plus, per attached volume, exactly the log-tail state that
// produced it. Restoring the cut and re-draining the logs from the
// recorded offsets yields a database byte-identical to a from-zero
// re-ingest, which is the crash-equivalence property the fault-injection
// tests sweep.

// CheckpointState is a consistent cut of a Waldo: the database view,
// its generation and record count, and per-volume tail state, all pinned
// on the same ApplyBatch boundary. Taking one is cheap — the view is an
// O(1) copy-on-write image and the tail state is a small map copy — but it
// briefly holds every tail's drain lock, so no drain may be mid-batch
// while the cut is taken. Serving (queries over views) is never paused.
type CheckpointState struct {
	View    *ReadView
	Gen     int64
	Records int64
	Volumes []VolumeState
}

// VolumeState is one volume's tail state at the cut: the resume byte
// offset per log sequence, and the records of transactions that had begun
// but not ended (which live only in Waldo's memory — their log bytes are
// before the offsets, so recovery could not otherwise see them again).
type VolumeState struct {
	Name    string
	Offsets map[uint64]int64
	Pending []PendingTxn
}

// PendingTxn is one open transaction's buffered records.
type PendingTxn struct {
	ID      uint64
	Records []record.Record
}

// ResumeBytes sums the recorded offsets: the log bytes recovery will skip.
func (v *VolumeState) ResumeBytes() int64 {
	var n int64
	for _, off := range v.Offsets {
		n += off
	}
	return n
}

// CheckpointState pins a consistent cut of the Waldo. It locks every
// tail (so no drain is between applying a batch and recording its offset)
// and then pins the database view inside that window; the view therefore
// contains exactly the records described by the returned offsets and
// pending transactions. Volumes are reported in attach order; their
// FSNames must be unique for RestoreVolumes to match them up later.
func (w *Waldo) CheckpointState() *CheckpointState {
	w.mu.Lock()
	tails := append([]*tail(nil), w.tails...)
	w.mu.Unlock()
	for _, t := range tails {
		t.mu.Lock()
	}
	defer func() {
		for _, t := range tails {
			t.mu.Unlock()
		}
	}()
	view := w.DB.ReadView()
	records, _, _ := view.Stats()
	cp := &CheckpointState{
		View:    view,
		Gen:     view.Gen(),
		Records: records,
		Volumes: make([]VolumeState, 0, len(tails)),
	}
	for _, t := range tails {
		vs := VolumeState{
			Name:    t.vol.FSName(),
			Offsets: make(map[uint64]int64, len(t.offsets)),
		}
		for seq, off := range t.offsets {
			vs.Offsets[seq] = off
		}
		txns := make([]uint64, 0, len(t.pending))
		for id := range t.pending {
			txns = append(txns, id)
		}
		sort.Slice(txns, func(i, j int) bool { return txns[i] < txns[j] })
		for _, id := range txns {
			vs.Pending = append(vs.Pending, PendingTxn{
				ID:      id,
				Records: append([]record.Record(nil), t.pending[id]...),
			})
		}
		cp.Volumes = append(cp.Volumes, vs)
	}
	return cp
}

// RestoreVolumes seeds attached volumes with checkpointed tail state, so
// the next Drain reads only log bytes past the checkpoint and open
// transactions resume waiting for their ENDTXN. Volumes are matched to
// states by FSName; the names of states with no attached volume are
// returned so the caller can surface them (their logs will be re-ingested
// from byte zero if the volume is attached later without a restore).
func (w *Waldo) RestoreVolumes(vols []VolumeState) (missing []string) {
	w.mu.Lock()
	tails := append([]*tail(nil), w.tails...)
	w.mu.Unlock()
	byName := make(map[string]*tail, len(tails))
	for _, t := range tails {
		byName[t.vol.FSName()] = t
	}
	for i := range vols {
		vs := &vols[i]
		t, ok := byName[vs.Name]
		if !ok {
			missing = append(missing, vs.Name)
			continue
		}
		t.mu.Lock()
		t.offsets = make(map[uint64]int64, len(vs.Offsets))
		for seq, off := range vs.Offsets {
			t.offsets[seq] = off
		}
		t.pending = make(map[uint64][]record.Record, len(vs.Pending))
		for _, p := range vs.Pending {
			t.pending[p.ID] = append([]record.Record(nil), p.Records...)
		}
		t.mu.Unlock()
	}
	return missing
}

// NewLogVolume adapts a bare provenance log to the Volume interface: a
// directory of log files on fs written by log, with no file system
// stacked on top. It is how a process that only ingests and serves (the
// passd daemon tailing a log directory, the recovery benchmarks and the
// crash tests) attaches a log without building a full Lasagna volume.
func NewLogVolume(name string, fs vfs.FS, log *provlog.Writer) Volume {
	return &logVol{name: name, fs: fs, log: log}
}

type logVol struct {
	name string
	fs   vfs.FS
	log  *provlog.Writer
}

func (v *logVol) FSName() string       { return v.name }
func (v *logVol) Lower() vfs.FS        { return v.fs }
func (v *logVol) Log() *provlog.Writer { return v.log }
