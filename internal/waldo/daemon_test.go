package waldo

import (
	"testing"
	"time"

	"passv2/internal/lasagna"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// TestDaemonIngestsInBackground runs Waldo the way the paper does: as a
// daemon woken by log-rotation notifications (simulated inotify) and a
// periodic tick, while a writer keeps producing provenance.
func TestDaemonIngestsInBackground(t *testing.T) {
	lower := vfs.NewMemFS("lower", nil)
	vol, err := lasagna.New("vol", lasagna.Config{Lower: lower, VolumeID: 1, MaxLogSize: 512, LogBuffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := New()
	w.Attach(vol)
	w.Start(2 * time.Millisecond)

	const total = 300
	for i := 0; i < total; i++ {
		vol.AppendProvenance([]record.Record{record.Input(ref(uint64(i+1), 1), ref(9999, 1))})
		if i%50 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	// The daemon should converge without an explicit Drain; Stop performs
	// a final drain as its barrier.
	if err := w.Stop(); err != nil {
		t.Fatal(err)
	}
	recs, _, _ := w.DB.Stats()
	if recs != total {
		t.Fatalf("daemon ingested %d records, want %d", recs, total)
	}
	// Restarting and stopping again is safe and idempotent.
	w.Start(time.Millisecond)
	w.Start(time.Millisecond) // double start is a no-op
	if err := w.Stop(); err != nil {
		t.Fatal(err)
	}
	recs2, _, _ := w.DB.Stats()
	if recs2 != total {
		t.Fatalf("records changed across restart: %d", recs2)
	}
}

// TestDaemonConcurrentWithWriter races the daemon against a fast writer
// (run with -race to check the locking).
func TestDaemonConcurrentWithWriter(t *testing.T) {
	lower := vfs.NewMemFS("lower", nil)
	vol, err := lasagna.New("vol", lasagna.Config{Lower: lower, VolumeID: 1, MaxLogSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	w := New()
	w.Attach(vol)
	w.Start(time.Millisecond)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			vol.AppendProvenance([]record.Record{record.Input(ref(uint64(i+1), 1), ref(7, 1))})
		}
	}()
	<-done
	if err := w.Stop(); err != nil {
		t.Fatal(err)
	}
	recs, _, _ := w.DB.Stats()
	if recs != 500 {
		t.Fatalf("lost records under concurrency: %d", recs)
	}
}
