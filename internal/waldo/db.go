// Package waldo implements Waldo, the PASSv2 user-level daemon (§5.6): it
// reads provenance records from the Lasagna log and stores them in a
// database, indexing them for the query engine. It is also where orphaned
// NFS transactions — provenance from a client that crashed mid-write — are
// identified and discarded (§6.1.2).
package waldo

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"passv2/internal/kvdb"
	"passv2/internal/pnode"
	"passv2/internal/record"
)

// Key schema. The "a|" space is the provenance database proper; everything
// else is a secondary index (the distinction Table 3 reports).
//
//	a|<pn16x>|<ver8x>|<attr>|<seq8x> → encoded value   (attribute rows)
//	i|<pn16x>|<ver8x>|<dst16x>|<dstver8x> → ""          (INPUT out-edges)
//	r|<pn16x>|<ver8x>|<src16x>|<srcver8x> → ""          (INPUT in-edges)
//	n|<name>\x00<pn16x> → ""                            (name index)
//	t|<type>\x00<pn16x> → ""                            (type index)
//	v|<pn16x>|<ver8x> → ""                              (version index)
//	N|<pn16x> → <ver8x><seq8x><name>                    (reverse name index)
//	T|<pn16x> → <ver8x><seq8x><type>                    (reverse type index)
//
// The reverse indexes give NameOf/TypeOf O(log n) point lookups; the
// <ver8x><seq8x> prefix makes "most recent wins" an ordinary string
// comparison even when records are applied out of version order.

const hexDigits = "0123456789abcdef"

// appendHex64/appendHex32 are the hot-path replacements for
// fmt.Sprintf("%016x"/"%08x"): fixed-width lowercase hex with no
// interface boxing or format parsing.
func appendHex64(dst []byte, v uint64) []byte {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return append(dst, b[:]...)
}

func appendHex32(dst []byte, v uint32) []byte {
	var b [8]byte
	for i := 7; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return append(dst, b[:]...)
}

func appendRefKey(dst []byte, r pnode.Ref) []byte {
	dst = appendHex64(dst, uint64(r.PNode))
	dst = append(dst, '|')
	return appendHex32(dst, uint32(r.Version))
}

func pnKey(pn pnode.PNode) string     { return string(appendHex64(nil, uint64(pn))) }
func verKey(v pnode.Version) string   { return string(appendHex32(nil, uint32(v))) }
func refKey(r pnode.Ref) string       { return string(appendRefKey(nil, r)) }
func parsePN(s string) pnode.PNode    { n, _ := strconv.ParseUint(s, 16, 64); return pnode.PNode(n) }
func parseVer(s string) pnode.Version { n, _ := strconv.ParseUint(s, 16, 32); return pnode.Version(n) }

func parseRef(s string) (pnode.Ref, bool) {
	if len(s) != 16+1+8 || s[16] != '|' {
		return pnode.Ref{}, false
	}
	return pnode.Ref{PNode: parsePN(s[:16]), Version: parseVer(s[17:])}, true
}

// kvStore is the ordered-read surface the query methods run over: both the
// live store (*kvdb.DB, reads under its RWMutex) and a pinned snapshot
// (*kvdb.View, lock-free) provide it.
type kvStore interface {
	Get(key string) ([]byte, bool)
	Has(key string) bool
	AscendPrefix(prefix string, fn func(key string, value []byte) bool)
	MaxInPrefix(prefix string) (string, []byte, bool)
	HasPrefix(prefix string) bool
}

// reader is the query surface of a provenance database — the methods the
// graph layer (graph.Source, graph.RefScanner) consumes. It is embedded by
// both DB (over the live store) and ReadView (over a frozen view), so the
// two answer queries with identical code.
type reader struct {
	store kvStore

	// legacy marks a database loaded from a snapshot that predates the
	// N|/T| reverse indexes; NameOf/TypeOf then fall back to scanning. It
	// is set during Load, before the database is shared.
	legacy bool
}

// DB is the indexed provenance database.
type DB struct {
	reader
	kv *kvdb.DB // the live store behind reader.store, for the write paths

	mu        sync.Mutex
	seqs      map[pnode.Ref]map[record.Attr]int // per-version per-attr row sequence
	keyBuf    []byte                            // scratch for key encoding, guarded by mu
	kvBuf     []kvdb.KV                         // scratch batch, guarded by mu
	provBytes int64
	idxBytes  int64
	records   int64

	// lazySeqs marks a database loaded by LoadCheckpoint: the seqs map
	// starts empty and a (ref, attr) pair's next row sequence is recovered
	// from the store (a bounded prefix count) the first time that pair is
	// written again. It keeps checkpoint recovery free of full-store scans.
	lazySeqs bool

	// gen counts applied batches: a cheap change detector, so a serving
	// layer can tell whether a pinned snapshot is still current without
	// comparing contents.
	gen atomic.Int64
}

// Gen returns the database generation: it increases every time a batch of
// records is applied, and is otherwise stable. Two equal Gen readings
// bracket an unchanged database, which is what makes snapshot-keyed
// caches (passd's plan/memo/result caches) sound.
func (db *DB) Gen() int64 { return db.gen.Load() }

// RestoreGen seeds the generation counter of a freshly loaded database.
// Checkpoint recovery calls it with the checkpointed generation so that
// generations — and the checkpoint files named after them — stay monotonic
// across restarts; without it a post-recovery checkpoint would sort before
// the one it was recovered from.
func (db *DB) RestoreGen(gen int64) {
	if gen > db.gen.Load() {
		db.gen.Store(gen)
	}
}

// NewDB creates an empty database.
func NewDB() *DB {
	kv := kvdb.New()
	return &DB{
		reader: reader{store: kv},
		kv:     kv,
		seqs:   make(map[pnode.Ref]map[record.Attr]int),
	}
}

// Apply stores one provenance record and maintains the indexes.
func (db *DB) Apply(r record.Record) {
	var one [1]record.Record
	one[0] = r
	db.ApplyBatch(one[:])
}

// ApplyBatch stores a batch of provenance records and maintains the
// indexes. This is Waldo's ingestion hot path: it takes the database lock
// once for the whole batch, encodes every key into a shared buffer with
// hand-rolled hex (no fmt on this path), and hands the store one sorted,
// deduplicated run so the B-tree's amortized insertion applies.
func (db *DB) ApplyBatch(recs []record.Record) {
	if len(recs) == 0 {
		return
	}
	db.mu.Lock()
	defer db.mu.Unlock()

	kvs := db.kvBuf[:0]
	buf := db.keyBuf
	mk := func() string { return string(buf) }

	for _, r := range recs {
		attrSeqs, ok := db.seqs[r.Subject]
		if !ok {
			attrSeqs = make(map[record.Attr]int)
			db.seqs[r.Subject] = attrSeqs
		}
		seq, have := attrSeqs[r.Attr]
		if !have && db.lazySeqs {
			// Checkpoint-recovered database: the next sequence for rows
			// this process has not yet written is however many rows the
			// snapshot already holds (a bounded prefix count, cached here).
			buf = append(buf[:0], 'a', '|')
			buf = appendRefKey(buf, r.Subject)
			buf = append(buf, '|')
			buf = append(buf, r.Attr...)
			buf = append(buf, '|')
			seq = db.kv.CountPrefix(mk())
		}
		attrSeqs[r.Attr] = seq + 1
		db.records++

		val := record.AppendValue(nil, r.Value)
		buf = append(buf[:0], 'a', '|')
		buf = appendRefKey(buf, r.Subject)
		buf = append(buf, '|')
		buf = append(buf, r.Attr...)
		buf = append(buf, '|')
		buf = appendHex32(buf, uint32(seq))
		kvs = append(kvs, kvdb.KV{Key: mk(), Val: val})

		buf = append(buf[:0], 'v', '|')
		buf = appendRefKey(buf, r.Subject)
		kvs = append(kvs, kvdb.KV{Key: mk()})

		if dep, isRef := r.Value.AsRef(); isRef && r.Attr == record.AttrInput {
			buf = append(buf[:0], 'i', '|')
			buf = appendRefKey(buf, r.Subject)
			buf = append(buf, '|')
			buf = appendRefKey(buf, dep)
			kvs = append(kvs, kvdb.KV{Key: mk()})

			buf = append(buf[:0], 'r', '|')
			buf = appendRefKey(buf, dep)
			buf = append(buf, '|')
			buf = appendRefKey(buf, r.Subject)
			kvs = append(kvs, kvdb.KV{Key: mk()})

			buf = append(buf[:0], 'v', '|')
			buf = appendRefKey(buf, dep)
			kvs = append(kvs, kvdb.KV{Key: mk()})
		}
		if s, isStr := r.Value.AsString(); isStr {
			var label, rev byte
			switch r.Attr {
			case record.AttrName:
				label, rev = 'n', 'N'
			case record.AttrType:
				label, rev = 't', 'T'
			default:
				continue
			}
			buf = append(buf[:0], label, '|')
			buf = append(buf, s...)
			buf = append(buf, 0)
			buf = appendHex64(buf, uint64(r.Subject.PNode))
			kvs = append(kvs, kvdb.KV{Key: mk()})

			// A legacy-snapshot database keeps answering NameOf/TypeOf
			// from scans: seeding the reverse index here could shadow a
			// newer label that exists only in the un-indexed legacy rows.
			if db.legacy {
				continue
			}
			// Reverse index: value carries <ver8x><seq8x> so the most
			// recent record wins regardless of application order.
			rv := make([]byte, 0, 16+len(s))
			rv = appendHex32(rv, uint32(r.Subject.Version))
			rv = appendHex32(rv, uint32(seq))
			rv = append(rv, s...)
			buf = append(buf[:0], rev, '|')
			buf = appendHex64(buf, uint64(r.Subject.PNode))
			k := mk()
			if old, exists := db.kv.Get(k); exists && len(old) >= 16 && string(old[:16]) > string(rv[:16]) {
				continue // a newer version's label is already indexed
			}
			kvs = append(kvs, kvdb.KV{Key: k, Val: rv})
		}
	}

	// One sorted, deduplicated run into the store. For equal keys the
	// greatest value wins: index keys carry nil values (all equal), and
	// reverse-index values order by their <ver8x><seq8x> prefix.
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].Key != kvs[j].Key {
			return kvs[i].Key < kvs[j].Key
		}
		return string(kvs[i].Val) < string(kvs[j].Val)
	})
	out := kvs[:0]
	for i := range kvs {
		if i+1 < len(kvs) && kvs[i+1].Key == kvs[i].Key {
			continue
		}
		out = append(out, kvs[i])
	}
	// Reverse-index rows are the only keys whose values get replaced;
	// capture the outgoing lengths so idxBytes tracks the delta.
	var oldLens map[int]int
	for i := range out {
		if c := out[i].Key[0]; c == 'N' || c == 'T' {
			if old, ok := db.kv.Get(out[i].Key); ok {
				if oldLens == nil {
					oldLens = make(map[int]int)
				}
				oldLens[i] = len(old)
			}
		}
	}
	db.kv.SetBatch(out)

	for i := range out {
		size := len(out[i].Key) + len(out[i].Val)
		switch {
		case out[i].Key[0] == 'a':
			db.provBytes += int64(size)
		case out[i].New:
			db.idxBytes += int64(size)
		default:
			if oldLen, ok := oldLens[i]; ok {
				db.idxBytes += int64(len(out[i].Val) - oldLen)
			}
		}
	}

	db.kvBuf = kvs[:0]
	db.keyBuf = buf[:0]
	db.gen.Add(1)
}

// Stats reports sizes for the space-overhead evaluation: records applied,
// provenance-database bytes, and index bytes.
func (db *DB) Stats() (records, provBytes, idxBytes int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.records, db.provBytes, db.idxBytes
}

// TreeStats exposes the underlying store's tree shape (key count, node
// count, depth) for the ingestion benchmarks.
func (db *DB) TreeStats() kvdb.Stats { return db.kv.Stats() }

// ReadView returns an immutable snapshot of the database. Taking one is
// O(1) (it pins the store's current tree root; subsequent ingestion
// copy-on-writes around it) and the view never contends with ApplyBatch —
// this is what lets many concurrent queries run while ingestion continues.
//
// ReadView acquires the database lock, so the snapshot always lands on an
// ApplyBatch boundary: a view observes a whole number of applied record
// batches, never a torn one. Relative to Waldo.Drain, that means a prefix
// of the drained log in applyBatchSize units; take the view after Drain
// returns to observe everything the drain ingested.
//
// A ReadView implements the same query surface as DB (graph.Source and
// graph.RefScanner), so graph.New(db.ReadView()) builds a graph whose
// queries are snapshot-isolated and lock-free.
func (db *DB) ReadView() *ReadView {
	db.mu.Lock()
	defer db.mu.Unlock()
	kv := db.kv.View()
	return &ReadView{
		reader:    reader{store: kv, legacy: db.legacy},
		kv:        kv,
		gen:       db.gen.Load(),
		records:   db.records,
		provBytes: db.provBytes,
		idxBytes:  db.idxBytes,
	}
}

// ReadView is an immutable snapshot of a provenance database: the full
// query surface of DB, answered from a frozen tree with no locking. See
// DB.ReadView.
type ReadView struct {
	reader
	kv        *kvdb.View
	gen       int64
	records   int64
	provBytes int64
	idxBytes  int64
}

// Gen returns the database generation the view was pinned at; the view is
// current exactly while DB.Gen() still returns it.
func (v *ReadView) Gen() int64 { return v.gen }

// Stats reports the record and byte counters pinned when the view was
// taken.
func (v *ReadView) Stats() (records, provBytes, idxBytes int64) {
	return v.records, v.provBytes, v.idxBytes
}

// Save writes the view's frozen image in the snapshot format — the same
// bytes DB.Save would have written at the view's point in time. The
// checkpoint store writes snapshots from a pinned view so ingestion never
// pauses for the disk.
func (v *ReadView) Save(w io.Writer) error { return v.kv.Save(w) }

// Epoch returns the underlying store's write epoch at the pin — the
// ordering delta checkpoints prune by. Epochs compare only between views
// of the same live database within one process lifetime.
func (v *ReadView) Epoch() uint64 { return v.kv.Epoch() }

// SnapshotSize returns the exact byte size Save would write, letting the
// checkpoint policy compare a delta against the full snapshot it would
// replace before committing either.
func (v *ReadView) SnapshotSize() int64 { return v.kv.SnapshotSize() }

// SaveDelta writes the ops that transform base's image into v's (sets and
// delete tombstones, kvdb delta format). base must be an earlier ReadView
// of the same live database in the same process; otherwise
// kvdb.ErrDeltaBase is returned and nothing is written, which is the
// checkpoint store's cue to fall back to a full generation.
func (v *ReadView) SaveDelta(base *ReadView, w io.Writer) (kvdb.DeltaStats, error) {
	if base == nil {
		return kvdb.DeltaStats{}, kvdb.ErrDeltaBase
	}
	return v.kv.SaveDelta(base.kv, w)
}

// --- Query surface (used by the graph view and PQL) ---
//
// These methods live on reader, so they serve identically over the live
// database (*DB) and over a pinned snapshot (*ReadView).

// Attrs returns all attribute records of one object version, in insertion
// order per attribute.
func (r *reader) Attrs(ref pnode.Ref) []record.Record {
	var out []record.Record
	prefix := "a|" + refKey(ref) + "|"
	r.store.AscendPrefix(prefix, func(k string, v []byte) bool {
		rest := k[len(prefix):] // attr|seq
		attr := rest[:len(rest)-9]
		val, _, err := record.DecodeValue(v)
		if err == nil {
			out = append(out, record.Record{Subject: ref, Attr: record.Attr(attr), Value: val})
		}
		return true
	})
	return out
}

// AttrValues returns the values of one attribute on one version.
func (r *reader) AttrValues(ref pnode.Ref, attr record.Attr) []record.Value {
	var out []record.Value
	for _, rec := range r.Attrs(ref) {
		if rec.Attr == attr {
			out = append(out, rec.Value)
		}
	}
	return out
}

// Inputs returns the direct ancestors of one object version.
func (r *reader) Inputs(ref pnode.Ref) []pnode.Ref {
	return r.edgeScan("i|", ref)
}

// Dependents returns the direct descendants of one object version.
func (r *reader) Dependents(ref pnode.Ref) []pnode.Ref {
	return r.edgeScan("r|", ref)
}

func (r *reader) edgeScan(space string, ref pnode.Ref) []pnode.Ref {
	var out []pnode.Ref
	prefix := space + refKey(ref) + "|"
	r.store.AscendPrefix(prefix, func(k string, _ []byte) bool {
		if dst, ok := parseRef(k[len(prefix):]); ok {
			out = append(out, dst)
		}
		return true
	})
	return out
}

// Versions lists all known versions of a pnode, ascending.
func (r *reader) Versions(pn pnode.PNode) []pnode.Version {
	var out []pnode.Version
	prefix := "v|" + pnKey(pn) + "|"
	r.store.AscendPrefix(prefix, func(k string, _ []byte) bool {
		out = append(out, parseVer(k[len(prefix):]))
		return true
	})
	return out
}

// LatestVersion returns the highest known version of a pnode: one bounded
// last-key descent in the version index, instead of materializing the full
// Versions slice and taking its tail.
func (r *reader) LatestVersion(pn pnode.PNode) (pnode.Version, bool) {
	prefix := "v|" + pnKey(pn) + "|"
	k, _, ok := r.store.MaxInPrefix(prefix)
	if !ok {
		return 0, false
	}
	return parseVer(k[len(prefix):]), true
}

// ByName returns the pnodes that have carried the exact name.
func (r *reader) ByName(name string) []pnode.PNode {
	return r.labelScan("n|", name)
}

// ByType returns the pnodes of one object type.
func (r *reader) ByType(typ string) []pnode.PNode {
	return r.labelScan("t|", typ)
}

// RefsByType returns every version of every pnode that has carried TYPE
// typ. It is the planner's bulk root enumeration (graph.RefScanner): one
// pass over the type index followed by bounded version-index scans with a
// shared key buffer, instead of ByType building a pnode slice and the graph
// layer running a dedup-map-and-sort Versions union per pnode. Output is
// sorted by (pnode, version).
func (r *reader) RefsByType(typ string) []pnode.Ref {
	return r.labelRefs("t|" + typ + "\x00")
}

// RefsByName returns every version of every pnode that has carried the
// exact name (graph.RefScanner; the name-equality pushdown seek).
func (r *reader) RefsByName(name string) []pnode.Ref {
	return r.labelRefs("n|" + name + "\x00")
}

func (r *reader) labelRefs(prefix string) []pnode.Ref {
	// Collect the pnodes first, then scan their version ranges: the two
	// phases must not nest, or a reader holding the store's RLock could
	// deadlock behind a queued ingestion writer.
	var pns []pnode.PNode
	r.store.AscendPrefix(prefix, func(k string, _ []byte) bool {
		pns = append(pns, parsePN(k[len(prefix):]))
		return true
	})
	out := make([]pnode.Ref, 0, len(pns))
	buf := make([]byte, 0, 2+16+1)
	for _, pn := range pns {
		buf = append(buf[:0], 'v', '|')
		buf = appendHex64(buf, uint64(pn))
		buf = append(buf, '|')
		vp := string(buf)
		r.store.AscendPrefix(vp, func(vk string, _ []byte) bool {
			out = append(out, pnode.Ref{PNode: pn, Version: parseVer(vk[len(vp):])})
			return true
		})
	}
	return out
}

// HasTypedPNode reports whether pn has ever carried TYPE typ: one point
// lookup in the type index (graph.RefScanner).
func (r *reader) HasTypedPNode(pn pnode.PNode, typ string) bool {
	return r.store.Has("t|" + typ + "\x00" + pnKey(pn))
}

func (r *reader) labelScan(space, label string) []pnode.PNode {
	var out []pnode.PNode
	prefix := space + label + "\x00"
	r.store.AscendPrefix(prefix, func(k string, _ []byte) bool {
		out = append(out, parsePN(k[len(prefix):]))
		return true
	})
	return out
}

// NameOf returns the most recent NAME value of a pnode across versions: an
// O(log n) point lookup in the reverse name index, with a bounded per-pnode
// scan as the fallback for pre-index snapshots.
func (r *reader) NameOf(pn pnode.PNode) (string, bool) {
	if v, ok := r.store.Get("N|" + pnKey(pn)); ok && len(v) >= 16 {
		return string(v[16:]), true
	}
	if !r.legacy {
		return "", false
	}
	name, found := "", false
	prefix := "a|" + pnKey(pn) + "|"
	r.store.AscendPrefix(prefix, func(k string, v []byte) bool {
		rest := k[len(prefix):] // ver|attr|seq
		if len(rest) > 9 && rest[9:len(rest)-9] == string(record.AttrName) {
			if val, _, err := record.DecodeValue(v); err == nil {
				if s, ok := val.AsString(); ok {
					name, found = s, true
				}
			}
		}
		return true
	})
	return name, found
}

// TypeOf returns the TYPE of a pnode, if recorded: an O(log n) point
// lookup in the reverse type index. Only a database loaded from a snapshot
// older than the index falls back to walking the t| space.
func (r *reader) TypeOf(pn pnode.PNode) (string, bool) {
	if v, ok := r.store.Get("T|" + pnKey(pn)); ok && len(v) >= 16 {
		return string(v[16:]), true
	}
	if !r.legacy {
		return "", false
	}
	typ, found := "", false
	r.store.AscendPrefix("t|", func(k string, _ []byte) bool {
		body := k[2:]
		for i := 0; i < len(body); i++ {
			if body[i] == 0 {
				if parsePN(body[i+1:]) == pn {
					typ, found = body[:i], true
					return false
				}
				break
			}
		}
		return true
	})
	return typ, found
}

// MaxPNode returns the highest pnode the database knows — as a record
// subject or as a cross-reference target — whose top 16 bits equal prefix:
// one bounded last-key descent in the version index. The passd object
// registry uses it to seed its pnode allocator past everything a previous
// process may have handed out, preserving the paper's never-recycled
// guarantee (§5.2) across daemon crashes.
func (r *reader) MaxPNode(prefix uint16) (pnode.PNode, bool) {
	buf := make([]byte, 0, 2+16)
	buf = append(buf, 'v', '|')
	buf = appendHex64(buf, uint64(prefix)<<prefixShift)
	k, _, ok := r.store.MaxInPrefix(string(buf[:2+4]))
	if !ok {
		return 0, false
	}
	pn := parsePN(k[2 : 2+16])
	if pnode.VolumePrefix(pn) != prefix {
		return 0, false
	}
	return pn, true
}

// prefixShift mirrors pnode's volume-prefix layout: 48 bits of per-volume
// pnode space below a 16-bit prefix.
const prefixShift = 48

// AllPNodes lists every pnode in the database, ascending.
func (r *reader) AllPNodes() []pnode.PNode {
	seen := make(map[pnode.PNode]bool)
	var out []pnode.PNode
	r.store.AscendPrefix("v|", func(k string, _ []byte) bool {
		pn := parsePN(k[2 : 2+16])
		if !seen[pn] {
			seen[pn] = true
			out = append(out, pn)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllRefs lists every (pnode, version) in the database.
func (r *reader) AllRefs() []pnode.Ref {
	var out []pnode.Ref
	r.store.AscendPrefix("v|", func(k string, _ []byte) bool {
		if ref, ok := parseRef(k[2:]); ok {
			out = append(out, ref)
		}
		return true
	})
	return out
}

// Save / Load persist the database via the kvdb snapshot format. Save pins
// a store view first, so the written image is consistent even while
// ingestion continues. Derived counters (stats, row sequences) are rebuilt
// on load.
func (db *DB) Save(w io.Writer) error { return db.kv.Save(w) }

// Load reads a database snapshot.
func Load(r io.Reader) (*DB, error) {
	kv, err := kvdb.Load(r)
	if err != nil {
		return nil, err
	}
	db := &DB{
		reader: reader{store: kv},
		kv:     kv,
		seqs:   make(map[pnode.Ref]map[record.Attr]int),
	}
	kv.AscendPrefix("a|", func(k string, v []byte) bool {
		db.provBytes += int64(len(k) + len(v))
		db.records++
		// a|pn|ver|attr|seq
		body := k[2:]
		if ref, ok := parseRef(body[:25]); ok && len(body) > 25+1+9 {
			attr := record.Attr(body[26 : len(body)-9])
			m := db.seqs[ref]
			if m == nil {
				m = make(map[record.Attr]int)
				db.seqs[ref] = m
			}
			m[attr]++
		}
		return true
	})
	for _, prefix := range []string{"i|", "r|", "n|", "t|", "v|", "N|", "T|"} {
		kv.AscendPrefix(prefix, func(k string, v []byte) bool {
			db.idxBytes += int64(len(k) + len(v))
			return true
		})
	}
	// A snapshot with label indexes but no reverse indexes predates them:
	// serve NameOf/TypeOf by scanning, as the old code did.
	if (kv.HasPrefix("n|") || kv.HasPrefix("t|")) &&
		!kv.HasPrefix("N|") && !kv.HasPrefix("T|") {
		db.legacy = true
	}
	return db, nil
}

// LoadCheckpoint reads a database snapshot image on the checkpoint
// recovery path: the derived counters (records, provenance and index
// bytes) come from the checkpoint manifest instead of the rebuild scans
// Load runs, and per-ref row sequences are recovered lazily on first
// write (see DB.lazySeqs). Restart cost is therefore one bulk tree build —
// nothing else touches every key.
func LoadCheckpoint(data []byte, records, provBytes, idxBytes int64) (*DB, error) {
	return LoadCheckpointChain(data, nil, records, provBytes, idxBytes)
}

// LoadCheckpointChain reconstructs a database from a full snapshot image
// plus a chain of delta images (kvdb delta format, oldest first) — the
// composition step of incremental checkpoint recovery. The counters come
// from the newest generation's manifest, so they describe the database
// after every delta has been applied. Like LoadCheckpoint, it takes
// ownership of every buffer it is handed.
func LoadCheckpointChain(full []byte, deltas [][]byte, records, provBytes, idxBytes int64) (*DB, error) {
	kv, err := kvdb.LoadBytes(full)
	if err != nil {
		return nil, err
	}
	for i, d := range deltas {
		if _, err := kvdb.ApplyDeltaBytes(kv, d); err != nil {
			return nil, fmt.Errorf("delta %d of %d: %w", i+1, len(deltas), err)
		}
	}
	db := &DB{
		reader:    reader{store: kv},
		kv:        kv,
		seqs:      make(map[pnode.Ref]map[record.Attr]int),
		records:   records,
		provBytes: provBytes,
		idxBytes:  idxBytes,
		lazySeqs:  true,
	}
	// Checkpoints are written by current code, so the legacy probe is only
	// a cheap safety net (four O(log n) lookups).
	if (kv.HasPrefix("n|") || kv.HasPrefix("t|")) &&
		!kv.HasPrefix("N|") && !kv.HasPrefix("T|") {
		db.legacy = true
	}
	return db, nil
}
