// Package waldo implements Waldo, the PASSv2 user-level daemon (§5.6): it
// reads provenance records from the Lasagna log and stores them in a
// database, indexing them for the query engine. It is also where orphaned
// NFS transactions — provenance from a client that crashed mid-write — are
// identified and discarded (§6.1.2).
package waldo

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"passv2/internal/kvdb"
	"passv2/internal/pnode"
	"passv2/internal/record"
)

// Key schema. The "a|" space is the provenance database proper; everything
// else is a secondary index (the distinction Table 3 reports).
//
//	a|<pn16x>|<ver8x>|<attr>|<seq8x> → encoded value   (attribute rows)
//	i|<pn16x>|<ver8x>|<dst16x>|<dstver8x> → ""          (INPUT out-edges)
//	r|<pn16x>|<ver8x>|<src16x>|<srcver8x> → ""          (INPUT in-edges)
//	n|<name>\x00<pn16x> → ""                            (name index)
//	t|<type>\x00<pn16x> → ""                            (type index)
//	v|<pn16x>|<ver8x> → ""                              (version index)

func pnKey(pn pnode.PNode) string     { return fmt.Sprintf("%016x", uint64(pn)) }
func verKey(v pnode.Version) string   { return fmt.Sprintf("%08x", uint32(v)) }
func refKey(r pnode.Ref) string       { return pnKey(r.PNode) + "|" + verKey(r.Version) }
func parsePN(s string) pnode.PNode    { n, _ := strconv.ParseUint(s, 16, 64); return pnode.PNode(n) }
func parseVer(s string) pnode.Version { n, _ := strconv.ParseUint(s, 16, 32); return pnode.Version(n) }

func parseRef(s string) (pnode.Ref, bool) {
	if len(s) != 16+1+8 || s[16] != '|' {
		return pnode.Ref{}, false
	}
	return pnode.Ref{PNode: parsePN(s[:16]), Version: parseVer(s[17:])}, true
}

// DB is the indexed provenance database.
type DB struct {
	kv *kvdb.DB

	mu        sync.Mutex
	seqs      map[pnode.Ref]map[record.Attr]int // per-version per-attr row sequence
	provBytes int64
	idxBytes  int64
	records   int64
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{kv: kvdb.New(), seqs: make(map[pnode.Ref]map[record.Attr]int)}
}

// Apply stores one provenance record and maintains the indexes.
func (db *DB) Apply(r record.Record) {
	db.mu.Lock()
	attrSeqs, ok := db.seqs[r.Subject]
	if !ok {
		attrSeqs = make(map[record.Attr]int)
		db.seqs[r.Subject] = attrSeqs
	}
	seq := attrSeqs[r.Attr]
	attrSeqs[r.Attr] = seq + 1
	db.records++
	db.mu.Unlock()

	val := record.AppendValue(nil, r.Value)
	aKey := "a|" + refKey(r.Subject) + "|" + string(r.Attr) + "|" + fmt.Sprintf("%08x", seq)
	db.kv.Set(aKey, val)
	db.addBytes(len(aKey)+len(val), 0)

	vKey := "v|" + refKey(r.Subject)
	if !db.kv.Set(vKey, nil) {
		db.addBytes(0, len(vKey))
	}

	if dep, isRef := r.Value.AsRef(); isRef && r.Attr == record.AttrInput {
		iKey := "i|" + refKey(r.Subject) + "|" + refKey(dep)
		rKey := "r|" + refKey(dep) + "|" + refKey(r.Subject)
		if !db.kv.Set(iKey, nil) {
			db.addBytes(0, len(iKey))
		}
		if !db.kv.Set(rKey, nil) {
			db.addBytes(0, len(rKey))
		}
		dKey := "v|" + refKey(dep)
		if !db.kv.Set(dKey, nil) {
			db.addBytes(0, len(dKey))
		}
	}
	if s, isStr := r.Value.AsString(); isStr {
		switch r.Attr {
		case record.AttrName:
			k := "n|" + s + "\x00" + pnKey(r.Subject.PNode)
			if !db.kv.Set(k, nil) {
				db.addBytes(0, len(k))
			}
		case record.AttrType:
			k := "t|" + s + "\x00" + pnKey(r.Subject.PNode)
			if !db.kv.Set(k, nil) {
				db.addBytes(0, len(k))
			}
		}
	}
}

func (db *DB) addBytes(prov, idx int) {
	db.mu.Lock()
	db.provBytes += int64(prov)
	db.idxBytes += int64(idx)
	db.mu.Unlock()
}

// Stats reports sizes for the space-overhead evaluation: records applied,
// provenance-database bytes, and index bytes.
func (db *DB) Stats() (records, provBytes, idxBytes int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.records, db.provBytes, db.idxBytes
}

// --- Query surface (used by the graph view and PQL) ---

// Attrs returns all attribute records of one object version, in insertion
// order per attribute.
func (db *DB) Attrs(ref pnode.Ref) []record.Record {
	var out []record.Record
	prefix := "a|" + refKey(ref) + "|"
	db.kv.AscendPrefix(prefix, func(k string, v []byte) bool {
		rest := k[len(prefix):] // attr|seq
		attr := rest[:len(rest)-9]
		r, _, err := decodeValueOnly(ref, record.Attr(attr), v)
		if err == nil {
			out = append(out, r)
		}
		return true
	})
	return out
}

func decodeValueOnly(ref pnode.Ref, attr record.Attr, enc []byte) (record.Record, int, error) {
	// Values are stored with record.AppendValue; reuse the record decoder
	// by framing a full record.
	full := record.AppendRecord(nil, record.Record{Subject: ref, Attr: attr})
	// Strip the zero-value placeholder (1 byte kind=invalid) and splice
	// the real encoded value.
	full = full[:len(full)-1]
	full = append(full, enc...)
	return record.DecodeRecord(full)
}

// AttrValues returns the values of one attribute on one version.
func (db *DB) AttrValues(ref pnode.Ref, attr record.Attr) []record.Value {
	var out []record.Value
	for _, r := range db.Attrs(ref) {
		if r.Attr == attr {
			out = append(out, r.Value)
		}
	}
	return out
}

// Inputs returns the direct ancestors of one object version.
func (db *DB) Inputs(ref pnode.Ref) []pnode.Ref {
	return db.edgeScan("i|", ref)
}

// Dependents returns the direct descendants of one object version.
func (db *DB) Dependents(ref pnode.Ref) []pnode.Ref {
	return db.edgeScan("r|", ref)
}

func (db *DB) edgeScan(space string, ref pnode.Ref) []pnode.Ref {
	var out []pnode.Ref
	prefix := space + refKey(ref) + "|"
	db.kv.AscendPrefix(prefix, func(k string, _ []byte) bool {
		if dst, ok := parseRef(k[len(prefix):]); ok {
			out = append(out, dst)
		}
		return true
	})
	return out
}

// Versions lists all known versions of a pnode, ascending.
func (db *DB) Versions(pn pnode.PNode) []pnode.Version {
	var out []pnode.Version
	prefix := "v|" + pnKey(pn) + "|"
	db.kv.AscendPrefix(prefix, func(k string, _ []byte) bool {
		out = append(out, parseVer(k[len(prefix):]))
		return true
	})
	return out
}

// LatestVersion returns the highest known version of a pnode.
func (db *DB) LatestVersion(pn pnode.PNode) (pnode.Version, bool) {
	vs := db.Versions(pn)
	if len(vs) == 0 {
		return 0, false
	}
	return vs[len(vs)-1], true
}

// ByName returns the pnodes that have carried the exact name.
func (db *DB) ByName(name string) []pnode.PNode {
	return db.labelScan("n|", name)
}

// ByType returns the pnodes of one object type.
func (db *DB) ByType(typ string) []pnode.PNode {
	return db.labelScan("t|", typ)
}

func (db *DB) labelScan(space, label string) []pnode.PNode {
	var out []pnode.PNode
	prefix := space + label + "\x00"
	db.kv.AscendPrefix(prefix, func(k string, _ []byte) bool {
		out = append(out, parsePN(k[len(prefix):]))
		return true
	})
	return out
}

// NameOf returns the most recent NAME value of a pnode across versions.
func (db *DB) NameOf(pn pnode.PNode) (string, bool) {
	name, found := "", false
	prefix := "a|" + pnKey(pn) + "|"
	db.kv.AscendPrefix(prefix, func(k string, v []byte) bool {
		rest := k[len(prefix):] // ver|attr|seq
		if len(rest) > 9 && rest[9:len(rest)-9] == string(record.AttrName) {
			ref := pnode.Ref{PNode: pn, Version: parseVer(rest[:8])}
			if r, _, err := decodeValueOnly(ref, record.AttrName, v); err == nil {
				if s, ok := r.Value.AsString(); ok {
					name, found = s, true
				}
			}
		}
		return true
	})
	return name, found
}

// TypeOf returns the TYPE of a pnode, if recorded.
func (db *DB) TypeOf(pn pnode.PNode) (string, bool) {
	typ, found := "", false
	db.kv.AscendPrefix("t|", func(k string, _ []byte) bool {
		body := k[2:]
		for i := 0; i < len(body); i++ {
			if body[i] == 0 {
				if parsePN(body[i+1:]) == pn {
					typ, found = body[:i], true
					return false
				}
				break
			}
		}
		return true
	})
	return typ, found
}

// AllPNodes lists every pnode in the database, ascending.
func (db *DB) AllPNodes() []pnode.PNode {
	seen := make(map[pnode.PNode]bool)
	var out []pnode.PNode
	db.kv.AscendPrefix("v|", func(k string, _ []byte) bool {
		pn := parsePN(k[2 : 2+16])
		if !seen[pn] {
			seen[pn] = true
			out = append(out, pn)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllRefs lists every (pnode, version) in the database.
func (db *DB) AllRefs() []pnode.Ref {
	var out []pnode.Ref
	db.kv.AscendPrefix("v|", func(k string, _ []byte) bool {
		if ref, ok := parseRef(k[2:]); ok {
			out = append(out, ref)
		}
		return true
	})
	return out
}

// Save / Load persist the database via the kvdb snapshot format. Derived
// counters (stats, row sequences) are rebuilt on load.
func (db *DB) Save(w io.Writer) error { return db.kv.Save(w) }

// Load reads a database snapshot.
func Load(r io.Reader) (*DB, error) {
	kv, err := kvdb.Load(r)
	if err != nil {
		return nil, err
	}
	db := &DB{kv: kv, seqs: make(map[pnode.Ref]map[record.Attr]int)}
	kv.AscendPrefix("a|", func(k string, v []byte) bool {
		db.provBytes += int64(len(k) + len(v))
		db.records++
		// a|pn|ver|attr|seq
		body := k[2:]
		if ref, ok := parseRef(body[:25]); ok && len(body) > 25+1+9 {
			attr := record.Attr(body[26 : len(body)-9])
			m := db.seqs[ref]
			if m == nil {
				m = make(map[record.Attr]int)
				db.seqs[ref] = m
			}
			m[attr]++
		}
		return true
	})
	for _, prefix := range []string{"i|", "r|", "n|", "t|", "v|"} {
		kv.AscendPrefix(prefix, func(k string, v []byte) bool {
			db.idxBytes += int64(len(k) + len(v))
			return true
		})
	}
	return db, nil
}
