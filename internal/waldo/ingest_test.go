package waldo

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"passv2/internal/lasagna"
	"passv2/internal/pnode"
	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// newBufferedVolume builds a volume whose log write-behind buffer is large
// enough that nothing reaches the lower FS until Drain's flush — useful
// for controlling exactly which bytes each drain sees.
func newBufferedVolume(t *testing.T, maxLog int64) (*lasagna.FS, *vfs.MemFS) {
	t.Helper()
	lower := vfs.NewMemFS("lower", nil)
	fs, err := lasagna.New("vol", lasagna.Config{Lower: lower, VolumeID: 1, MaxLogSize: maxLog, LogBuffer: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return fs, lower
}

// TestDrainProportionalWork pins the fast path's contract: the entries a
// drain decodes equal the entries appended since the previous drain, not
// the total log size. The seed implementation skipped already-seen entries
// but still decoded every one on every drain.
func TestDrainProportionalWork(t *testing.T) {
	vol, _ := newBufferedVolume(t, 2048)
	w := New()
	w.Attach(vol)

	appendN := func(lo, n int) {
		for i := lo; i < lo+n; i++ {
			vol.AppendProvenance([]record.Record{record.Input(ref(uint64(i+1), 1), ref(9999, 1))})
		}
	}

	appendN(0, 500)
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := w.EntriesDecoded(); got != 500 {
		t.Fatalf("cold drain decoded %d entries, want 500", got)
	}

	appendN(500, 7)
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := w.EntriesDecoded() - 500; got != 7 {
		t.Fatalf("incremental drain decoded %d entries, want 7", got)
	}

	// Nothing new: a drain must decode nothing.
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := w.EntriesDecoded() - 507; got != 0 {
		t.Fatalf("idle drain decoded %d entries, want 0", got)
	}
	recs, _, _ := w.DB.Stats()
	if recs != 507 {
		t.Fatalf("ingested %d records, want 507", recs)
	}
}

// TestTornTailResume crashes a log mid-frame, drains (which must ingest
// the intact prefix and record the torn offset), then repairs the tail the
// way recovery does — truncating the torn frame and appending fresh
// entries — and verifies the next drain resumes exactly at the recorded
// offset without re-applying or losing anything.
func TestTornTailResume(t *testing.T) {
	lower := vfs.NewMemFS("lower", nil)
	log, err := provlog.NewWriter(lower, "/.prov", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := log.AppendRecord(0, record.Input(ref(uint64(i+1), 1), ref(500, 1))); err != nil {
			t.Fatal(err)
		}
	}
	intact := log.Size()
	// Tear the tail: half a frame of garbage past the last intact entry.
	f, err := lower.Open("/.prov/"+provlog.CurrentName, vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad}, intact); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w := New()
	w.Attach(&logVolume{name: "torn", lower: lower, log: log})
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	recs, _, _ := w.DB.Stats()
	if recs != 10 {
		t.Fatalf("drain over torn tail ingested %d records, want 10", recs)
	}

	// Repair: truncate the torn frame (what recovery does) and keep
	// appending. The writer still believes size == intact, so appends
	// land at the recorded resume offset.
	f, _ = lower.Open("/.prov/"+provlog.CurrentName, vfs.ORdWr)
	if err := f.Truncate(intact); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for i := 10; i < 15; i++ {
		if err := log.AppendRecord(0, record.Input(ref(uint64(i+1), 1), ref(500, 1))); err != nil {
			t.Fatal(err)
		}
	}
	before := w.EntriesDecoded()
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := w.EntriesDecoded() - before; got != 5 {
		t.Fatalf("post-repair drain decoded %d entries, want 5 (resume at torn offset)", got)
	}
	recs, _, _ = w.DB.Stats()
	if recs != 15 {
		t.Fatalf("ingested %d records after repair, want 15", recs)
	}
}

// logVolume adapts a bare provlog.Writer to the Volume interface for tests
// that need byte-level control over the log file.
type logVolume struct {
	name  string
	lower vfs.FS
	log   *provlog.Writer
}

func (v *logVolume) FSName() string       { return v.name }
func (v *logVolume) Lower() vfs.FS        { return v.lower }
func (v *logVolume) Log() *provlog.Writer { return v.log }

// TestRotationMidTail interleaves drains with rotations: entries ingested
// from log.current must stay accounted for after the file is renamed into
// the sequence, and entries appended after the rotation must all arrive.
func TestRotationMidTail(t *testing.T) {
	vol, _ := newBufferedVolume(t, 0) // rotate manually
	w := New()
	w.Attach(vol)

	total := 0
	appendN := func(n int) {
		for i := 0; i < n; i++ {
			vol.AppendProvenance([]record.Record{record.Input(ref(uint64(total+1), 1), ref(9999, 1))})
			total++
		}
	}

	appendN(20)
	if err := w.Drain(); err != nil { // mid-file drain of log.current
		t.Fatal(err)
	}
	appendN(10)
	if err := vol.Log().Rotate(); err != nil { // now log.00000000
		t.Fatal(err)
	}
	appendN(15) // lands in the new log.current
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	appendN(5)
	if err := vol.Log().Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}

	recs, _, _ := w.DB.Stats()
	if recs != int64(total) {
		t.Fatalf("ingested %d records across rotations, want %d", recs, total)
	}
	// The renamed file's bytes were never re-decoded: only new entries.
	if got := w.EntriesDecoded(); got != int64(total) {
		t.Fatalf("decoded %d entries, want %d (rotation must not rescan)", got, total)
	}
}

// TestConcurrentDrainAndQueries hammers one Waldo database from two
// draining volumes and several query readers at once; run under -race this
// is the ingestion path's concurrency contract.
func TestConcurrentDrainAndQueries(t *testing.T) {
	w := New()
	vols := make([]*lasagna.FS, 3)
	for i := range vols {
		lower := vfs.NewMemFS(fmt.Sprintf("lower%d", i), nil)
		vol, err := lasagna.New(fmt.Sprintf("vol%d", i), lasagna.Config{Lower: lower, VolumeID: uint16(i + 1), MaxLogSize: 4096, LogBuffer: 1024})
		if err != nil {
			t.Fatal(err)
		}
		vols[i] = vol
		w.Attach(vol)
	}

	const perVol = 400
	var wg sync.WaitGroup
	for vi, vol := range vols {
		vi, vol := vi, vol
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perVol; i++ {
				vol.AppendProvenance([]record.Record{
					record.Input(ref(uint64(vi*10000+i+1), 1), ref(7777, 1)),
					record.New(ref(uint64(vi*10000+i+1), 1), record.AttrName, record.StringVal(fmt.Sprintf("/f%d", i))),
				})
				if i%50 == 0 {
					if err := w.Drain(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.DB.Inputs(ref(uint64(i+1), 1))
				w.DB.NameOf(pnode.PNode(i + 1))
				w.DB.TypeOf(pnode.PNode(i + 1))
				w.DB.Versions(pnode.PNode(i + 1))
			}
		}()
	}
	wg.Wait()
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	recs, _, _ := w.DB.Stats()
	if want := int64(len(vols) * perVol * 2); recs != want {
		t.Fatalf("ingested %d records, want %d", recs, want)
	}
}

// TestApplyBatchMatchesApply feeds the same stream through per-record
// Apply and through one ApplyBatch and checks the databases are
// indistinguishable to the query surface.
func TestApplyBatchMatchesApply(t *testing.T) {
	var recs []record.Record
	for i := 0; i < 60; i++ {
		subj := ref(uint64(i%7+1), uint32(i%3+1))
		recs = append(recs,
			record.Input(subj, ref(uint64(i%5+100), 1)),
			record.New(subj, record.AttrName, record.StringVal(fmt.Sprintf("/n%d", i%7))),
			record.New(subj, record.AttrType, record.StringVal(record.TypeFile)),
			record.New(subj, record.AttrArgv, record.Int(int64(i))),
		)
	}
	one, batch := NewDB(), NewDB()
	for _, r := range recs {
		one.Apply(r)
	}
	batch.ApplyBatch(recs)

	r1, p1, i1 := one.Stats()
	r2, p2, i2 := batch.Stats()
	if r1 != r2 || p1 != p2 || i1 != i2 {
		t.Fatalf("stats diverge: Apply (%d,%d,%d) vs ApplyBatch (%d,%d,%d)", r1, p1, i1, r2, p2, i2)
	}
	var b1, b2 bytes.Buffer
	if err := one.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := batch.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("snapshots diverge between Apply and ApplyBatch")
	}
	for pn := uint64(1); pn <= 7; pn++ {
		n1, ok1 := one.NameOf(pnode.PNode(pn))
		n2, ok2 := batch.NameOf(pnode.PNode(pn))
		if n1 != n2 || ok1 != ok2 {
			t.Fatalf("NameOf(%d): %q/%v vs %q/%v", pn, n1, ok1, n2, ok2)
		}
	}
}

// TestTypeOfNameOfTargeted is the regression test for the reverse label
// indexes: point lookups must return the same answers the old full scans
// did, including "most recent version wins" and out-of-order application.
func TestTypeOfNameOfTargeted(t *testing.T) {
	db := NewDB()
	for pn := uint64(1); pn <= 50; pn++ {
		db.Apply(record.New(ref(pn, 1), record.AttrType, record.StringVal(record.TypeFile)))
		db.Apply(record.New(ref(pn, 1), record.AttrName, record.StringVal(fmt.Sprintf("/old%d", pn))))
	}
	// pnode 7 is renamed at version 3; version 2's name arrives *after*
	// version 3's (out-of-order application must not regress the answer).
	db.Apply(record.New(ref(7, 3), record.AttrName, record.StringVal("/newest")))
	db.Apply(record.New(ref(7, 2), record.AttrName, record.StringVal("/middle")))

	if typ, ok := db.TypeOf(30); !ok || typ != record.TypeFile {
		t.Fatalf("TypeOf(30) = %q,%v", typ, ok)
	}
	if _, ok := db.TypeOf(999); ok {
		t.Fatal("TypeOf(999) found a type for an unknown pnode")
	}
	if name, ok := db.NameOf(7); !ok || name != "/newest" {
		t.Fatalf("NameOf(7) = %q,%v, want /newest (highest version wins)", name, ok)
	}
	if name, ok := db.NameOf(12); !ok || name != "/old12" {
		t.Fatalf("NameOf(12) = %q,%v", name, ok)
	}
}

// TestLegacySnapshotFallback loads a snapshot stripped of the reverse
// indexes (what a pre-fast-path database file looks like) and checks
// NameOf/TypeOf still answer via the fallback scans.
func TestLegacySnapshotFallback(t *testing.T) {
	db := NewDB()
	db.Apply(record.New(ref(4, 1), record.AttrType, record.StringVal(record.TypeProc)))
	db.Apply(record.New(ref(4, 1), record.AttrName, record.StringVal("/bin/sh")))
	db.Apply(record.New(ref(4, 2), record.AttrName, record.StringVal("/bin/bash")))
	for _, k := range append(db.kv.Keys("N|"), db.kv.Keys("T|")...) {
		db.kv.Delete(k)
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.legacy {
		t.Fatal("stripped snapshot not detected as legacy")
	}
	if typ, ok := loaded.TypeOf(4); !ok || typ != record.TypeProc {
		t.Fatalf("legacy TypeOf(4) = %q,%v", typ, ok)
	}
	if name, ok := loaded.NameOf(4); !ok || name != "/bin/bash" {
		t.Fatalf("legacy NameOf(4) = %q,%v", name, ok)
	}
	if _, ok := loaded.TypeOf(99); ok {
		t.Fatal("legacy TypeOf(99) found a type for an unknown pnode")
	}
	// An out-of-order older-version record applied to a legacy database
	// must not seed the reverse index and shadow the newer legacy name.
	loaded.Apply(record.New(ref(4, 1), record.AttrName, record.StringVal("/bin/dash")))
	if name, ok := loaded.NameOf(4); !ok || name != "/bin/bash" {
		t.Fatalf("legacy NameOf(4) after out-of-order apply = %q,%v, want /bin/bash", name, ok)
	}
}
