package waldo

import (
	"math/rand"
	"testing"

	"passv2/internal/pnode"
	"passv2/internal/record"
)

// TestPropertyEdgeIndexesAreInverse applies random INPUT records and
// checks the two edge indexes stay exact inverses: x ∈ Inputs(y) ⇔
// y ∈ Dependents(x). The query engine's reverse traversal (input~)
// depends on this.
func TestPropertyEdgeIndexesAreInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := NewDB()
	type edge struct{ s, d pnode.Ref }
	truth := map[edge]bool{}
	for i := 0; i < 3000; i++ {
		s := pnode.Ref{PNode: pnode.PNode(rng.Intn(60) + 1), Version: pnode.Version(rng.Intn(4) + 1)}
		d := pnode.Ref{PNode: pnode.PNode(rng.Intn(60) + 1), Version: pnode.Version(rng.Intn(4) + 1)}
		db.Apply(record.Input(s, d))
		truth[edge{s, d}] = true
	}
	// Forward matches truth.
	fwd := 0
	for _, ref := range db.AllRefs() {
		for _, d := range db.Inputs(ref) {
			if !truth[edge{ref, d}] {
				t.Fatalf("phantom forward edge %v → %v", ref, d)
			}
			fwd++
		}
	}
	if fwd != len(truth) {
		t.Fatalf("forward edges = %d, want %d", fwd, len(truth))
	}
	// Reverse is the exact inverse.
	rev := 0
	for _, ref := range db.AllRefs() {
		for _, s := range db.Dependents(ref) {
			if !truth[edge{s, ref}] {
				t.Fatalf("phantom reverse edge %v ← %v", ref, s)
			}
			rev++
		}
	}
	if rev != fwd {
		t.Fatalf("reverse edges = %d, forward = %d", rev, fwd)
	}
}

// TestPropertyAttrsRoundTrip applies random attribute records and checks
// every one is retrievable on its exact subject version, in order.
func TestPropertyAttrsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := NewDB()
	attrs := []record.Attr{record.AttrName, record.AttrArgv, record.Attr("CUSTOM"), record.AttrVisitedURL}
	type key struct {
		ref  pnode.Ref
		attr record.Attr
	}
	truth := map[key][]string{}
	for i := 0; i < 2000; i++ {
		ref := pnode.Ref{PNode: pnode.PNode(rng.Intn(40) + 1), Version: pnode.Version(rng.Intn(3) + 1)}
		attr := attrs[rng.Intn(len(attrs))]
		val := string(rune('a'+rng.Intn(26))) + string(rune('0'+rng.Intn(10)))
		db.Apply(record.New(ref, attr, record.StringVal(val)))
		truth[key{ref, attr}] = append(truth[key{ref, attr}], val)
	}
	for k, want := range truth {
		vals := db.AttrValues(k.ref, k.attr)
		if len(vals) != len(want) {
			t.Fatalf("%v %s: %d values, want %d", k.ref, k.attr, len(vals), len(want))
		}
		for i, v := range vals {
			s, _ := v.AsString()
			if s != want[i] {
				t.Fatalf("%v %s[%d] = %q, want %q (order lost)", k.ref, k.attr, i, s, want[i])
			}
		}
	}
}
