package waldo

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"passv2/internal/graph"
	"passv2/internal/pnode"
	"passv2/internal/record"
)

// A ReadView must offer the full query surface the graph layer consumes.
var (
	_ graph.Source     = (*ReadView)(nil)
	_ graph.RefScanner = (*ReadView)(nil)
	_ graph.Source     = (*DB)(nil)
	_ graph.RefScanner = (*DB)(nil)
)

func chainRecords(lo, hi int, name func(int) string) []record.Record {
	var recs []record.Record
	for i := lo; i < hi; i++ {
		ref := pnode.Ref{PNode: pnode.PNode(i), Version: 1}
		recs = append(recs,
			record.New(ref, record.AttrName, record.StringVal(name(i))),
			record.New(ref, record.AttrType, record.StringVal(record.TypeFile)))
		if i > lo {
			recs = append(recs, record.Input(ref, pnode.Ref{PNode: pnode.PNode(i - 1), Version: 1}))
		}
	}
	return recs
}

// TestReadViewSnapshotIsolation pins a view mid-ingestion and checks it
// answers every query family from the pinned state while the live DB moves
// on.
func TestReadViewSnapshotIsolation(t *testing.T) {
	db := NewDB()
	name := func(i int) string { return fmt.Sprintf("/f/%d", i) }
	db.ApplyBatch(chainRecords(1, 101, name))

	v := db.ReadView()
	wantRecs, wantProv, wantIdx := db.Stats()

	// Everything applied after the pin must be invisible to the view.
	db.ApplyBatch(chainRecords(101, 201, name))
	db.Apply(record.New(pnode.Ref{PNode: 50, Version: 2},
		record.AttrName, record.StringVal("/f/renamed")))

	if got := len(v.AllRefs()); got != 100 {
		t.Fatalf("view AllRefs = %d, want 100", got)
	}
	if got := len(db.AllRefs()); got != 201 { // 200 files + v2 of pnode 50
		t.Fatalf("live AllRefs = %d, want 201", got)
	}
	if _, ok := v.NameOf(150); ok {
		t.Fatal("view sees a pnode ingested after the pin")
	}
	if n, ok := v.NameOf(50); !ok || n != "/f/50" {
		t.Fatalf("view NameOf(50) = %q, %v; want pinned /f/50", n, ok)
	}
	if n, ok := db.NameOf(50); !ok || n != "/f/renamed" {
		t.Fatalf("live NameOf(50) = %q, %v; want /f/renamed", n, ok)
	}
	if got := len(v.RefsByName("/f/42")); got != 1 {
		t.Fatalf("view RefsByName = %d refs, want 1", got)
	}
	if got := len(v.RefsByType(record.TypeFile)); got != 100 {
		t.Fatalf("view RefsByType = %d, want 100", got)
	}
	if lv, ok := v.LatestVersion(50); !ok || lv != 1 {
		t.Fatalf("view LatestVersion(50) = %d, %v; want 1", lv, ok)
	}
	if lv, ok := db.LatestVersion(50); !ok || lv != 2 {
		t.Fatalf("live LatestVersion(50) = %d, %v; want 2", lv, ok)
	}
	recs, prov, idx := v.Stats()
	if recs != wantRecs || prov != wantProv || idx != wantIdx {
		t.Fatalf("view Stats = (%d,%d,%d), want pinned (%d,%d,%d)",
			recs, prov, idx, wantRecs, wantProv, wantIdx)
	}

	// A graph over the view answers a closure query from the pinned state.
	g := graph.New(v)
	anc := g.Ancestors(pnode.Ref{PNode: 100, Version: 1})
	if len(anc) != 99 {
		t.Fatalf("view ancestry of pnode 100 = %d refs, want 99", len(anc))
	}
}

// TestReadViewConcurrentIngest is the -race exercise: view readers running
// graph closures while ApplyBatch ingests, plus view pinning from several
// goroutines.
func TestReadViewConcurrentIngest(t *testing.T) {
	db := NewDB()
	name := func(i int) string { return fmt.Sprintf("/c/%d", i) }
	db.ApplyBatch(chainRecords(1, 65, name))

	stop := make(chan struct{})
	var writer, readers sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for n := 0; n < 200; n++ {
			select {
			case <-stop:
				return
			default:
			}
			lo := 1000 + n*32
			db.ApplyBatch(chainRecords(lo, lo+32, name))
			runtime.Gosched()
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			last := int64(-1)
			for i := 0; i < 40; i++ {
				v := db.ReadView()
				recs, _, _ := v.Stats()
				if recs < last {
					t.Errorf("views went backwards: %d then %d", last, recs)
					return
				}
				last = recs
				g := graph.New(v)
				if got := len(g.Ancestors(pnode.Ref{PNode: 64, Version: 1})); got != 63 {
					t.Errorf("ancestry under ingest = %d, want 63", got)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
