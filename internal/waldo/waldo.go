package waldo

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// Volume is what Waldo tails: a Lasagna volume (local or the one behind an
// NFS export). The interface keeps waldo independent of the file-system
// packages above it.
type Volume interface {
	FSName() string
	Lower() vfs.FS
	Log() *provlog.Writer
}

// drainParallelism bounds how many volumes one Drain call ingests
// concurrently. Volumes are independent logs feeding one database, whose
// ApplyBatch serializes writers; the bound keeps a many-volume server from
// holding every log's bytes in memory at once.
const drainParallelism = 8

// applyBatchSize is how many records drainTail accumulates before handing
// them to DB.ApplyBatch. It bounds both memory during a cold ingest of a
// huge log and the write-lock hold time per batch.
const applyBatchSize = 4096

// Waldo tails one or more volumes' provenance logs into one database. One
// database may span several volumes — that is how queries cross layers and
// machines (§3.1's anomaly case needs Kepler provenance from the local
// volume joined with file provenance from two NFS servers).
type Waldo struct {
	DB *DB

	mu      sync.Mutex
	tails   []*tail
	orphan  int64 // records discarded as orphaned transactions
	stop    chan struct{}
	wg      sync.WaitGroup
	decoded atomic.Int64 // log entries decoded across all drains
}

// tail tracks one volume's ingestion progress: a byte offset per log
// sequence, so a drain reads and decodes only bytes it has never seen.
// mu serializes drains of this tail (a manual Drain can race the daemon
// goroutine) and guards the transaction buffer.
type tail struct {
	vol Volume

	mu      sync.Mutex
	offsets map[uint64]int64 // resume byte offset, per log sequence

	// Open transactions: records held back until their ENDTXN arrives.
	pending map[uint64][]record.Record
}

// New creates a Waldo over an empty database.
func New() *Waldo { return &Waldo{DB: NewDB()} }

// Attach registers a volume for tailing.
func (w *Waldo) Attach(vol Volume) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tails = append(w.tails, &tail{
		vol:     vol,
		offsets: make(map[uint64]int64),
		pending: make(map[uint64][]record.Record),
	})
}

// EntriesDecoded reports how many log entries Waldo has decoded across all
// drains since creation. Because tails resume from byte offsets, the delta
// across one Drain equals the entries newly appended since the last one —
// the property TestDrainProportionalWork pins down.
func (w *Waldo) EntriesDecoded() int64 { return w.decoded.Load() }

// Drain synchronously ingests everything new in every attached volume's
// logs, draining independent volumes concurrently (bounded). It is
// idempotent: each tail resumes from its recorded byte offset, so bytes
// are never decoded or applied twice.
func (w *Waldo) Drain() error {
	w.mu.Lock()
	tails := append([]*tail(nil), w.tails...)
	w.mu.Unlock()
	if len(tails) <= 1 {
		for _, t := range tails {
			if err := w.drainTail(t); err != nil {
				return fmt.Errorf("waldo: %s: %w", t.vol.FSName(), err)
			}
		}
		return nil
	}
	var (
		wg   sync.WaitGroup
		sem  = make(chan struct{}, drainParallelism)
		errc = make([]error, len(tails))
	)
	for i, t := range tails {
		i, t := i, t
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			if err := w.drainTail(t); err != nil {
				errc[i] = fmt.Errorf("waldo: %s: %w", t.vol.FSName(), err)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errc...)
}

// drainTail ingests one volume's new log bytes: flush the writer, list the
// log files, scan each from its recorded offset, and apply the decoded
// records to the database in batches.
func (w *Waldo) drainTail(t *tail) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.vol.Log().Flush(); err != nil {
		return err
	}
	lower, dir := t.vol.Lower(), t.vol.Log().Dir()
	files, err := provlog.LogFiles(lower, dir)
	if err != nil {
		return err
	}
	currentSeq := t.vol.Log().CurrentSeq()
	var batch []record.Record
	flush := func() {
		if len(batch) > 0 {
			w.DB.ApplyBatch(batch)
			batch = batch[:0]
		}
	}
	for i, path := range files {
		name := vfs.Base(path)
		seq, rotated := provlog.ParseSeq(name)
		if !rotated {
			seq = currentSeq
		}
		off := t.offsets[seq]
		next, scanErr := provlog.ScanFileFrom(lower, path, off, func(e provlog.Entry) error {
			w.decoded.Add(1)
			batch = t.collect(batch, e)
			if len(batch) >= applyBatchSize {
				flush()
			}
			return nil
		})
		if next > off {
			t.offsets[seq] = next
		}
		if errors.Is(scanErr, provlog.ErrTorn) && i == len(files)-1 {
			scanErr = nil // torn active tail: ingest the intact prefix
		}
		if scanErr != nil {
			flush()
			return scanErr
		}
	}
	flush()
	return nil
}

// collect routes one decoded entry: loose records go straight into the
// batch, transactional records are buffered until their ENDTXN.
func (t *tail) collect(batch []record.Record, e provlog.Entry) []record.Record {
	switch e.Type {
	case provlog.EntryBeginTxn:
		if _, ok := t.pending[e.Txn]; !ok {
			t.pending[e.Txn] = nil
		}
	case provlog.EntryEndTxn:
		batch = append(batch, t.pending[e.Txn]...)
		delete(t.pending, e.Txn)
	case provlog.EntryRecord:
		if e.Txn != 0 {
			t.pending[e.Txn] = append(t.pending[e.Txn], e.Rec)
			break
		}
		batch = append(batch, e.Rec)
	case provlog.EntryData:
		// Data descriptors serve crash recovery, not the database.
	}
	return batch
}

// OrphanTxns lists transactions that have begun but not ended across all
// volumes — after a full drain these are the orphans a crashed NFS client
// left behind.
func (w *Waldo) OrphanTxns() []uint64 {
	w.mu.Lock()
	tails := append([]*tail(nil), w.tails...)
	w.mu.Unlock()
	var out []uint64
	for _, t := range tails {
		t.mu.Lock()
		for id := range t.pending {
			out = append(out, id)
		}
		t.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DiscardOrphans drops the records of all open transactions, returning how
// many records were discarded. The server calls it once crashed clients
// cannot come back (§6.1.2: "the transaction ID enables the server's Waldo
// daemon to identify the orphaned provenance").
func (w *Waldo) DiscardOrphans() int {
	w.mu.Lock()
	tails := append([]*tail(nil), w.tails...)
	w.mu.Unlock()
	n := 0
	for _, t := range tails {
		t.mu.Lock()
		for id, recs := range t.pending {
			n += len(recs)
			delete(t.pending, id)
		}
		t.mu.Unlock()
	}
	w.mu.Lock()
	w.orphan += int64(n)
	w.mu.Unlock()
	return n
}

// Start runs the daemon: drain on every log-rotation notification
// (simulated inotify) and on a periodic tick. Stop with Stop.
func (w *Waldo) Start(interval time.Duration) {
	w.mu.Lock()
	if w.stop != nil {
		w.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	w.stop = stop
	tails := append([]*tail(nil), w.tails...)
	w.mu.Unlock()

	for _, t := range tails {
		t := t
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.vol.Log().Notify():
				case <-ticker.C:
				}
				if err := w.drainTail(t); err != nil {
					// A torn rotated log is permanent corruption;
					// surface it loudly rather than spin.
					return
				}
			}
		}()
	}
}

// Stop halts the daemon and performs a final drain.
func (w *Waldo) Stop() error {
	w.mu.Lock()
	stop := w.stop
	w.stop = nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		w.wg.Wait()
	}
	return w.Drain()
}
