package waldo

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"passv2/internal/provlog"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// Volume is what Waldo tails: a Lasagna volume (local or the one behind an
// NFS export). The interface keeps waldo independent of the file-system
// packages above it.
type Volume interface {
	FSName() string
	Lower() vfs.FS
	Log() *provlog.Writer
}

// Waldo tails one or more volumes' provenance logs into one database. One
// database may span several volumes — that is how queries cross layers and
// machines (§3.1's anomaly case needs Kepler provenance from the local
// volume joined with file provenance from two NFS servers).
type Waldo struct {
	DB *DB

	mu     sync.Mutex
	tails  []*tail
	orphan int64 // records discarded as orphaned transactions
	stop   chan struct{}
	wg     sync.WaitGroup
}

type tail struct {
	vol  Volume
	seen map[uint64]int // entries already ingested, per log sequence

	// Open transactions: records held back until their ENDTXN arrives.
	pending map[uint64][]record.Record
}

// New creates a Waldo over an empty database.
func New() *Waldo { return &Waldo{DB: NewDB()} }

// Attach registers a volume for tailing.
func (w *Waldo) Attach(vol Volume) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tails = append(w.tails, &tail{
		vol:     vol,
		seen:    make(map[uint64]int),
		pending: make(map[uint64][]record.Record),
	})
}

// Drain synchronously ingests everything new in every attached volume's
// logs. It is idempotent: entries are counted per log file and never
// re-applied.
func (w *Waldo) Drain() error {
	w.mu.Lock()
	tails := append([]*tail(nil), w.tails...)
	w.mu.Unlock()
	for _, t := range tails {
		if err := w.drainTail(t); err != nil {
			return fmt.Errorf("waldo: %s: %w", t.vol.FSName(), err)
		}
	}
	return nil
}

func (w *Waldo) drainTail(t *tail) error {
	if err := t.vol.Log().Flush(); err != nil {
		return err
	}
	lower, dir := t.vol.Lower(), t.vol.Log().Dir()
	files, err := provlog.LogFiles(lower, dir)
	if err != nil {
		return err
	}
	currentSeq := t.vol.Log().CurrentSeq()
	for i, path := range files {
		name := vfs.Base(path)
		seq, rotated := provlog.ParseSeq(name)
		if !rotated {
			seq = currentSeq
		}
		skip := t.seen[seq]
		n := 0
		scanErr := provlog.ScanFile(lower, path, func(e provlog.Entry) error {
			n++
			if n <= skip {
				return nil
			}
			w.applyEntry(t, e)
			return nil
		})
		if errors.Is(scanErr, provlog.ErrTorn) && i == len(files)-1 {
			scanErr = nil // torn active tail: ingest the intact prefix
		}
		if scanErr != nil {
			return scanErr
		}
		if n > skip {
			t.seen[seq] = n
		}
	}
	return nil
}

func (w *Waldo) applyEntry(t *tail, e provlog.Entry) {
	switch e.Type {
	case provlog.EntryBeginTxn:
		if _, ok := t.pending[e.Txn]; !ok {
			t.pending[e.Txn] = nil
		}
	case provlog.EntryEndTxn:
		for _, r := range t.pending[e.Txn] {
			w.DB.Apply(r)
		}
		delete(t.pending, e.Txn)
	case provlog.EntryRecord:
		if e.Txn != 0 {
			t.pending[e.Txn] = append(t.pending[e.Txn], e.Rec)
			return
		}
		w.DB.Apply(e.Rec)
	case provlog.EntryData:
		// Data descriptors serve crash recovery, not the database.
	}
}

// OrphanTxns lists transactions that have begun but not ended across all
// volumes — after a full drain these are the orphans a crashed NFS client
// left behind.
func (w *Waldo) OrphanTxns() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []uint64
	for _, t := range w.tails {
		for id := range t.pending {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DiscardOrphans drops the records of all open transactions, returning how
// many records were discarded. The server calls it once crashed clients
// cannot come back (§6.1.2: "the transaction ID enables the server's Waldo
// daemon to identify the orphaned provenance").
func (w *Waldo) DiscardOrphans() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, t := range w.tails {
		for id, recs := range t.pending {
			n += len(recs)
			delete(t.pending, id)
		}
	}
	w.orphan += int64(n)
	return n
}

// Start runs the daemon: drain on every log-rotation notification
// (simulated inotify) and on a periodic tick. Stop with Stop.
func (w *Waldo) Start(interval time.Duration) {
	w.mu.Lock()
	if w.stop != nil {
		w.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	w.stop = stop
	tails := append([]*tail(nil), w.tails...)
	w.mu.Unlock()

	for _, t := range tails {
		t := t
		w.wg.Add(1)
		go func() {
			defer w.wg.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.vol.Log().Notify():
				case <-ticker.C:
				}
				if err := w.drainTail(t); err != nil {
					// A torn rotated log is permanent corruption;
					// surface it loudly rather than spin.
					return
				}
			}
		}()
	}
}

// Stop halts the daemon and performs a final drain.
func (w *Waldo) Stop() error {
	w.mu.Lock()
	stop := w.stop
	w.stop = nil
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		w.wg.Wait()
	}
	return w.Drain()
}
