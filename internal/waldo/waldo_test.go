package waldo

import (
	"bytes"
	"testing"

	"passv2/internal/lasagna"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

func ref(p uint64, v uint32) pnode.Ref {
	return pnode.Ref{PNode: pnode.PNode(p), Version: pnode.Version(v)}
}

func TestApplyAndQuery(t *testing.T) {
	db := NewDB()
	file := ref(10, 1)
	proc := ref(20, 1)
	db.Apply(record.New(file, record.AttrName, record.StringVal("/out.dat")))
	db.Apply(record.New(file, record.AttrType, record.StringVal(record.TypeFile)))
	db.Apply(record.New(proc, record.AttrType, record.StringVal(record.TypeProc)))
	db.Apply(record.New(proc, record.AttrArgv, record.StringVal("sort -u")))
	db.Apply(record.Input(file, proc))

	if got := db.Inputs(file); len(got) != 1 || got[0] != proc {
		t.Fatalf("Inputs = %v", got)
	}
	if got := db.Dependents(proc); len(got) != 1 || got[0] != file {
		t.Fatalf("Dependents = %v", got)
	}
	if got := db.ByName("/out.dat"); len(got) != 1 || got[0] != file.PNode {
		t.Fatalf("ByName = %v", got)
	}
	if got := db.ByType(record.TypeProc); len(got) != 1 || got[0] != proc.PNode {
		t.Fatalf("ByType = %v", got)
	}
	if name, ok := db.NameOf(file.PNode); !ok || name != "/out.dat" {
		t.Fatalf("NameOf = %q,%v", name, ok)
	}
	if typ, ok := db.TypeOf(proc.PNode); !ok || typ != record.TypeProc {
		t.Fatalf("TypeOf = %q,%v", typ, ok)
	}
	attrs := db.Attrs(proc)
	if len(attrs) != 2 {
		t.Fatalf("Attrs = %v", attrs)
	}
	vals := db.AttrValues(proc, record.AttrArgv)
	if len(vals) != 1 {
		t.Fatal("AttrValues missed ARGV")
	}
	if s, _ := vals[0].AsString(); s != "sort -u" {
		t.Fatalf("ARGV = %v", vals[0])
	}
}

func TestVersionsAndLatest(t *testing.T) {
	db := NewDB()
	db.Apply(record.Input(ref(5, 1), ref(9, 1)))
	db.Apply(record.Input(ref(5, 2), ref(5, 1))) // version chain
	db.Apply(record.Input(ref(5, 3), ref(5, 2)))
	vs := db.Versions(5)
	if len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Fatalf("Versions = %v", vs)
	}
	if v, ok := db.LatestVersion(5); !ok || v != 3 {
		t.Fatalf("Latest = %v,%v", v, ok)
	}
	if _, ok := db.LatestVersion(999); ok {
		t.Fatal("phantom latest version")
	}
	// The dep side of records is present in the version index too.
	if got := db.Versions(9); len(got) != 1 {
		t.Fatalf("dep versions = %v", got)
	}
}

func TestMultipleValuesSameAttrKept(t *testing.T) {
	db := NewDB()
	s := ref(7, 1)
	db.Apply(record.New(s, record.AttrVisitedURL, record.StringVal("http://a")))
	db.Apply(record.New(s, record.AttrVisitedURL, record.StringVal("http://b")))
	vals := db.AttrValues(s, record.AttrVisitedURL)
	if len(vals) != 2 {
		t.Fatalf("got %d VISITED_URL values", len(vals))
	}
	a, _ := vals[0].AsString()
	b, _ := vals[1].AsString()
	if a != "http://a" || b != "http://b" {
		t.Fatalf("order lost: %v %v", a, b)
	}
}

func newVolume(t *testing.T) *lasagna.FS {
	t.Helper()
	lower := vfs.NewMemFS("lower", nil)
	fs, err := lasagna.New("vol", lasagna.Config{Lower: lower, VolumeID: 1, MaxLogSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestDrainFromVolume(t *testing.T) {
	vol := newVolume(t)
	w := New()
	w.Attach(vol)

	f, err := vol.Open("/data", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	pf := f.(vfs.PassFile)
	proc := ref(0x999, 1)
	pf.PassWrite([]byte("x"), 0, record.NewBundle(
		record.Input(pf.Ref(), proc),
		record.New(pf.Ref(), record.AttrName, record.StringVal("/data")),
	))
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := w.DB.Inputs(pf.Ref()); len(got) != 1 || got[0] != proc {
		t.Fatalf("Inputs after drain = %v", got)
	}
	// Drain again: idempotent.
	rec0, _, _ := w.DB.Stats()
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	rec1, _, _ := w.DB.Stats()
	if rec0 != rec1 {
		t.Fatalf("re-drain re-applied records: %d → %d", rec0, rec1)
	}
}

func TestDrainAcrossRotation(t *testing.T) {
	vol := newVolume(t) // MaxLogSize 512 → rotations
	w := New()
	w.Attach(vol)
	f, _ := vol.Open("/f", vfs.OCreate|vfs.ORdWr)
	pf := f.(vfs.PassFile)
	for i := 0; i < 40; i++ {
		pf.PassWrite(nil, 0, record.NewBundle(record.Input(pf.Ref(), ref(uint64(0x1000+i), 1))))
		if i == 20 {
			if err := w.Drain(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := len(w.DB.Inputs(pf.Ref())); got != 40 {
		t.Fatalf("inputs = %d, want 40 (lost across rotation?)", got)
	}
}

func TestTxnRecordsHeldUntilEnd(t *testing.T) {
	vol := newVolume(t)
	w := New()
	w.Attach(vol)
	log := vol.Log()
	subj := ref(0x100, 1)

	log.AppendBeginTxn(42)
	log.AppendRecord(42, record.Input(subj, ref(0x200, 1)))
	w.Drain()
	if got := w.DB.Inputs(subj); len(got) != 0 {
		t.Fatal("txn record applied before ENDTXN")
	}
	if orphans := w.OrphanTxns(); len(orphans) != 1 || orphans[0] != 42 {
		t.Fatalf("orphans = %v", orphans)
	}
	log.AppendEndTxn(42)
	w.Drain()
	if got := w.DB.Inputs(subj); len(got) != 1 {
		t.Fatal("txn record lost after ENDTXN")
	}
	if len(w.OrphanTxns()) != 0 {
		t.Fatal("txn still open after end")
	}
}

func TestDiscardOrphans(t *testing.T) {
	vol := newVolume(t)
	w := New()
	w.Attach(vol)
	log := vol.Log()
	log.AppendBeginTxn(7)
	log.AppendRecord(7, record.Input(ref(1, 1), ref(2, 1)))
	log.AppendRecord(7, record.Input(ref(1, 1), ref(3, 1)))
	// A completed transaction alongside.
	log.AppendBeginTxn(8)
	log.AppendRecord(8, record.Input(ref(4, 1), ref(5, 1)))
	log.AppendEndTxn(8)
	w.Drain()
	if n := w.DiscardOrphans(); n != 2 {
		t.Fatalf("discarded %d records, want 2", n)
	}
	if got := w.DB.Inputs(ref(1, 1)); len(got) != 0 {
		t.Fatal("orphaned records leaked into the database")
	}
	if got := w.DB.Inputs(ref(4, 1)); len(got) != 1 {
		t.Fatal("completed txn lost")
	}
}

func TestStatsSeparateProvenanceFromIndexes(t *testing.T) {
	db := NewDB()
	db.Apply(record.Input(ref(1, 1), ref(2, 1)))
	db.Apply(record.New(ref(1, 1), record.AttrName, record.StringVal("/x")))
	recs, prov, idx := db.Stats()
	if recs != 2 || prov <= 0 || idx <= 0 {
		t.Fatalf("stats = %d,%d,%d", recs, prov, idx)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()
	db.Apply(record.Input(ref(1, 1), ref(2, 1)))
	db.Apply(record.New(ref(1, 1), record.AttrName, record.StringVal("/x")))
	db.Apply(record.New(ref(2, 1), record.AttrType, record.StringVal(record.TypeProc)))
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.Inputs(ref(1, 1)); len(got) != 1 {
		t.Fatal("edges lost in snapshot")
	}
	if name, ok := db2.NameOf(1); !ok || name != "/x" {
		t.Fatal("names lost in snapshot")
	}
	r1, p1, i1 := db.Stats()
	r2, p2, i2 := db2.Stats()
	if r1 != r2 || p1 != p2 || i1 != i2 {
		t.Fatalf("stats drifted: %d,%d,%d vs %d,%d,%d", r1, p1, i1, r2, p2, i2)
	}
	// Sequence counters were rebuilt: adding another NAME must not clobber.
	db2.Apply(record.New(ref(1, 1), record.AttrName, record.StringVal("/y")))
	if vals := db2.AttrValues(ref(1, 1), record.AttrName); len(vals) != 2 {
		t.Fatalf("NAME rows after reload = %d, want 2", len(vals))
	}
}

func TestAllPNodesAndRefs(t *testing.T) {
	db := NewDB()
	db.Apply(record.Input(ref(3, 1), ref(1, 2)))
	db.Apply(record.Input(ref(2, 1), ref(1, 2)))
	pns := db.AllPNodes()
	if len(pns) != 3 || pns[0] != 1 || pns[1] != 2 || pns[2] != 3 {
		t.Fatalf("AllPNodes = %v", pns)
	}
	refs := db.AllRefs()
	if len(refs) != 3 {
		t.Fatalf("AllRefs = %v", refs)
	}
}

func TestRefsByTypeAndName(t *testing.T) {
	db := NewDB()
	// Two FILEs (one multi-version), one PROC; one file renamed at v2.
	db.Apply(record.New(ref(1, 1), record.AttrType, record.StringVal(record.TypeFile)))
	db.Apply(record.New(ref(1, 1), record.AttrName, record.StringVal("/a")))
	db.Apply(record.Input(ref(1, 2), ref(1, 1)))
	db.Apply(record.New(ref(1, 2), record.AttrName, record.StringVal("/b")))
	db.Apply(record.New(ref(2, 1), record.AttrType, record.StringVal(record.TypeFile)))
	db.Apply(record.New(ref(3, 1), record.AttrType, record.StringVal(record.TypeProc)))

	got := db.RefsByType(record.TypeFile)
	want := []pnode.Ref{ref(1, 1), ref(1, 2), ref(2, 1)}
	if len(got) != len(want) {
		t.Fatalf("RefsByType = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RefsByType[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// RefsByType must agree with ByType × Versions.
	var naive []pnode.Ref
	for _, pn := range db.ByType(record.TypeFile) {
		for _, v := range db.Versions(pn) {
			naive = append(naive, pnode.Ref{PNode: pn, Version: v})
		}
	}
	if len(naive) != len(got) {
		t.Fatalf("RefsByType disagrees with ByType+Versions: %v vs %v", got, naive)
	}

	// The name index covers every name a pnode ever carried: both versions
	// of pnode 1 are returned for either name.
	if got := db.RefsByName("/a"); len(got) != 2 || got[0] != ref(1, 1) || got[1] != ref(1, 2) {
		t.Fatalf("RefsByName(/a) = %v", got)
	}
	if got := db.RefsByName("/b"); len(got) != 2 {
		t.Fatalf("RefsByName(/b) = %v", got)
	}
	if got := db.RefsByName("/absent"); len(got) != 0 {
		t.Fatalf("RefsByName(absent) = %v", got)
	}
	if got := db.RefsByType("NOSUCH"); len(got) != 0 {
		t.Fatalf("RefsByType(absent) = %v", got)
	}

	if !db.HasTypedPNode(1, record.TypeFile) {
		t.Fatal("HasTypedPNode missed pnode 1")
	}
	if db.HasTypedPNode(1, record.TypeProc) {
		t.Fatal("HasTypedPNode false positive")
	}
	if db.HasTypedPNode(99, record.TypeFile) {
		t.Fatal("HasTypedPNode phantom pnode")
	}
}

func TestLatestVersionBoundedLookup(t *testing.T) {
	db := NewDB()
	// Interleave pnodes so the version index holds neighbors on both sides
	// of pnode 5's range; the last-key descent must not cross into them.
	db.Apply(record.Input(ref(4, 9), ref(9, 1)))
	for v := uint32(1); v <= 40; v++ {
		db.Apply(record.Input(ref(5, v), ref(9, 1)))
	}
	db.Apply(record.Input(ref(6, 1), ref(9, 1)))
	if v, ok := db.LatestVersion(5); !ok || v != 40 {
		t.Fatalf("LatestVersion(5) = %v,%v", v, ok)
	}
	if v, ok := db.LatestVersion(4); !ok || v != 9 {
		t.Fatalf("LatestVersion(4) = %v,%v", v, ok)
	}
	if _, ok := db.LatestVersion(7); ok {
		t.Fatal("LatestVersion(7) should miss")
	}
	if _, ok := db.LatestVersion(0); ok {
		t.Fatal("LatestVersion(0) should miss")
	}
}
