// Package web is a deterministic in-process World Wide Web: sites, pages,
// hyperlinks, redirects and downloadable resources, with mutable content.
// It stands in for the real web in the PA-links use cases (§3.2): the
// attribution scenario needs pages that later disappear, and the malware
// scenario needs a site whose download is silently replaced after a
// compromise.
package web

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors returned by the web.
var (
	ErrNotFound         = errors.New("web: 404 not found")
	ErrTooManyRedirects = errors.New("web: redirect loop")
)

// Page is one addressable resource.
type Page struct {
	// Content is the page body (HTML-ish for pages, raw bytes for
	// downloads).
	Content []byte
	// Links are the URLs this page links to.
	Links []string
	// Redirect, if set, bounces the request to another URL (the
	// "redirected from a trusted site" detail of the malware use case).
	Redirect string
	// Download marks the resource as a file download rather than a page.
	Download bool
}

// Web is the simulated internet.
type Web struct {
	mu    sync.Mutex
	pages map[string]*Page
	hits  map[string]int
}

// New creates an empty web.
func New() *Web {
	return &Web{pages: make(map[string]*Page), hits: make(map[string]int)}
}

// AddPage publishes a page with links.
func (w *Web) AddPage(url string, content string, links ...string) *Web {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pages[url] = &Page{Content: []byte(content), Links: links}
	return w
}

// AddDownload publishes a downloadable resource.
func (w *Web) AddDownload(url string, content []byte) *Web {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pages[url] = &Page{Content: content, Download: true}
	return w
}

// AddRedirect publishes a redirect.
func (w *Web) AddRedirect(from, to string) *Web {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pages[from] = &Page{Redirect: to}
	return w
}

// Replace swaps a resource's content in place — Eve hacking the codec
// site.
func (w *Web) Replace(url string, content []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	p, ok := w.pages[url]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, url)
	}
	p.Content = content
	return nil
}

// Remove takes a resource offline (the attribution use case: "some of
// them are no longer even accessible on the Web").
func (w *Web) Remove(url string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.pages, url)
}

// Get fetches a URL, following redirects. It returns the page and the
// final URL.
func (w *Web) Get(url string) (*Page, string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for hops := 0; hops < 8; hops++ {
		p, ok := w.pages[url]
		if !ok {
			return nil, url, fmt.Errorf("%w: %s", ErrNotFound, url)
		}
		w.hits[url]++
		if p.Redirect != "" {
			url = p.Redirect
			continue
		}
		cp := *p
		cp.Content = append([]byte(nil), p.Content...)
		cp.Links = append([]string(nil), p.Links...)
		return &cp, url, nil
	}
	return nil, url, ErrTooManyRedirects
}

// Hits reports how many times a URL was fetched.
func (w *Web) Hits(url string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hits[url]
}

// URLs lists the published URLs, sorted.
func (w *Web) URLs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]string, 0, len(w.pages))
	for u := range w.pages {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Host extracts the host part of a URL ("http://a.example/x" → "a.example").
func Host(url string) string {
	s := strings.TrimPrefix(strings.TrimPrefix(url, "https://"), "http://")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}
