package web

import (
	"errors"
	"testing"
)

func TestPagesAndLinks(t *testing.T) {
	w := New()
	w.AddPage("http://a.example/", "home", "http://a.example/about")
	w.AddPage("http://a.example/about", "about us")
	p, final, err := w.Get("http://a.example/")
	if err != nil || final != "http://a.example/" {
		t.Fatal(err)
	}
	if string(p.Content) != "home" || len(p.Links) != 1 {
		t.Fatalf("page = %+v", p)
	}
	if _, _, err := w.Get("http://nope/"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("404 = %v", err)
	}
}

func TestRedirects(t *testing.T) {
	w := New()
	w.AddRedirect("http://short/x", "http://long.example/real")
	w.AddPage("http://long.example/real", "content")
	p, final, err := w.Get("http://short/x")
	if err != nil || final != "http://long.example/real" || string(p.Content) != "content" {
		t.Fatalf("redirect: %v %q %v", final, p.Content, err)
	}
	// Loop detection.
	w.AddRedirect("http://loop/a", "http://loop/b")
	w.AddRedirect("http://loop/b", "http://loop/a")
	if _, _, err := w.Get("http://loop/a"); !errors.Is(err, ErrTooManyRedirects) {
		t.Fatalf("loop = %v", err)
	}
}

func TestReplaceAndRemove(t *testing.T) {
	w := New()
	w.AddDownload("http://codecs.example/codec.bin", []byte("clean"))
	if err := w.Replace("http://codecs.example/codec.bin", []byte("EVIL")); err != nil {
		t.Fatal(err)
	}
	p, _, _ := w.Get("http://codecs.example/codec.bin")
	if string(p.Content) != "EVIL" {
		t.Fatal("replace failed")
	}
	if !p.Download {
		t.Fatal("download flag lost")
	}
	if err := w.Replace("http://missing/", nil); !errors.Is(err, ErrNotFound) {
		t.Fatal("replace of missing must fail")
	}
	w.Remove("http://codecs.example/codec.bin")
	if _, _, err := w.Get("http://codecs.example/codec.bin"); !errors.Is(err, ErrNotFound) {
		t.Fatal("remove failed")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	w := New()
	w.AddDownload("http://x/f", []byte("orig"))
	p, _, _ := w.Get("http://x/f")
	p.Content[0] = 'X'
	p2, _, _ := w.Get("http://x/f")
	if string(p2.Content) != "orig" {
		t.Fatal("Get must return copies")
	}
}

func TestHitsAndURLs(t *testing.T) {
	w := New()
	w.AddPage("http://b/", "b")
	w.AddPage("http://a/", "a")
	w.Get("http://a/")
	w.Get("http://a/")
	if w.Hits("http://a/") != 2 || w.Hits("http://b/") != 0 {
		t.Fatal("hit counts wrong")
	}
	urls := w.URLs()
	if len(urls) != 2 || urls[0] != "http://a/" {
		t.Fatalf("URLs = %v", urls)
	}
}

func TestHost(t *testing.T) {
	cases := map[string]string{
		"http://a.example/x/y": "a.example",
		"https://b.example":    "b.example",
		"http://c.example/":    "c.example",
	}
	for in, want := range cases {
		if got := Host(in); got != want {
			t.Errorf("Host(%q) = %q", in, got)
		}
	}
}
