package workload

import (
	"fmt"
	"io"
	"math/rand"

	"passv2/internal/kepler"
	"passv2/internal/kernel"
)

// Blast simulates the biological workload: formatdb formats two input
// protein-sequence files, Blast matches the two formatted databases
// (CPU-dominant), and a series of Perl scripts massage the output through
// a shell pipeline. The paper measures +0.7% (PASSv2) / +1.9% (PA-NFS):
// compute time swamps provenance I/O.
func Blast(k *kernel.Kernel, cfg Config) (*Stats, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	stats := &Stats{}
	seqSize := cfg.scale(200_000)

	// Input sequence files for the two species.
	prep := k.Spawn(nil, "fetch", []string{"fetch", "sequences"}, nil)
	stats.Processes++
	for i := 1; i <= 2; i++ {
		if err := writeThrough(prep, fmt.Sprintf("%s/species%d.fasta", cfg.Dir, i), body(rng, seqSize)); err != nil {
			return nil, err
		}
	}
	prep.Exit()

	// formatdb ×2.
	for i := 1; i <= 2; i++ {
		f := k.Spawn(nil, "formatdb", []string{"formatdb", "-i", fmt.Sprintf("species%d.fasta", i)}, nil)
		stats.Processes++
		in, err := readThrough(f, fmt.Sprintf("%s/species%d.fasta", cfg.Dir, i))
		if err != nil {
			return nil, err
		}
		f.Compute(int64(len(in)) * 20)
		if err := writeThrough(f, fmt.Sprintf("%s/species%d.phr", cfg.Dir, i), in[:len(in)/2]); err != nil {
			return nil, err
		}
		f.Exit()
	}

	// blastp: reads both formatted databases, burns CPU, writes hits.
	blast := k.Spawn(nil, "blastall", []string{"blastall", "-p", "blastp"}, nil)
	stats.Processes++
	db1, err := readThrough(blast, cfg.Dir+"/species1.phr")
	if err != nil {
		return nil, err
	}
	db2, err := readThrough(blast, cfg.Dir+"/species2.phr")
	if err != nil {
		return nil, err
	}
	blast.Compute(int64(len(db1)+len(db2)) * 2500) // the dominant cost
	hits := body(rng, len(db1)/8)
	if err := writeThrough(blast, cfg.Dir+"/hits.raw", hits); err != nil {
		return nil, err
	}
	blast.Exit()

	// Perl massage pipeline: perl1 | perl2 > hits.final (through real
	// pipes so pipe provenance is exercised).
	sh := k.Spawn(nil, "sh", []string{"sh", "-c", "perl f1 | perl f2"}, nil)
	stats.Processes++
	p1 := sh.Fork()
	p1.Exec(cfg.Dir+"/perl", []string{"perl", "filter1.pl"}, nil)
	p2 := sh.Fork()
	p2.Exec(cfg.Dir+"/perl", []string{"perl", "filter2.pl"}, nil)
	stats.Processes += 2
	pr, pw, err := sh.Pipe()
	if err != nil {
		return nil, err
	}
	pwFD, err := sh.GiveFD(pw, p1)
	if err != nil {
		return nil, err
	}
	prFD, err := sh.GiveFD(pr, p2)
	if err != nil {
		return nil, err
	}
	raw, err := readThrough(p1, cfg.Dir+"/hits.raw")
	if err != nil {
		return nil, err
	}
	p1.Compute(int64(len(raw)) * 10)
	if _, err := p1.Write(pwFD, raw[:len(raw)/2]); err != nil {
		return nil, err
	}
	p1.Close(pwFD)
	var filtered []byte
	buf := make([]byte, 4096)
	for {
		n, err := p2.Read(prFD, buf)
		filtered = append(filtered, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	p2.Compute(int64(len(filtered)) * 10)
	if err := writeThrough(p2, cfg.Dir+"/hits.final", filtered); err != nil {
		return nil, err
	}
	stats.FilesOut++
	stats.BytesOut += int64(len(filtered))
	p1.Exit()
	p2.Exit()
	sh.Exit()
	return stats, nil
}

// Kepler2 adapts Kepler to the harness signature (pa selects the
// PASSRecorder).
func Kepler2(k *kernel.Kernel, cfg Config, pa bool) (*Stats, error) {
	return Kepler(k, cfg, pa)
}

// Kepler runs the tabular-reformat workflow of the evaluation: parse
// tabular data, extract values, reformat with a user expression. When pa
// is true the engine records provenance into PASSv2 (the PA-Kepler row);
// otherwise only system-level provenance accrues.
func Kepler(k *kernel.Kernel, cfg Config, pa bool) (*Stats, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	stats := &Stats{}
	rows := cfg.scale(60000)
	const chunks = 12

	p := k.Spawn(nil, "kepler", []string{"kepler", "tabular.xml"}, nil)
	stats.Processes++
	// Tabular input, pre-split into chunk files (the Kepler job fans the
	// table out over a chain of operators per chunk, which is what makes
	// the workflow's own provenance — operators and messages — a
	// noticeable fraction of the data it touches, as in the paper).
	rowsPer := rows/chunks + 1
	for c := 0; c < chunks; c++ {
		var tab []byte
		for i := 0; i < rowsPer; i++ {
			tab = append(tab, []byte(fmt.Sprintf("%d,%d,%d\n", c*rowsPer+i, rng.Intn(1000), rng.Intn(1000)))...)
		}
		if err := writeThrough(p, fmt.Sprintf("%s/chunk%02d.csv", cfg.Dir, c), tab); err != nil {
			return nil, err
		}
	}

	eng := kepler.NewEngine(p)
	if pa {
		eng.AddRecorder(kepler.NewPASSRecorder(p, cfg.Dir))
	}
	wf := kepler.NewWorkflow("tabular-reformat")
	for c := 0; c < chunks; c++ {
		src := fmt.Sprintf("src%02d", c)
		parse := fmt.Sprintf("parse%02d", c)
		extract := fmt.Sprintf("extract%02d", c)
		reformat := fmt.Sprintf("reformat%02d", c)
		sink := fmt.Sprintf("sink%02d", c)
		wf.Add(kepler.FileSource(src, fmt.Sprintf("%s/chunk%02d.csv", cfg.Dir, c)))
		wf.Add(kepler.Stage(parse, []string{"in"}, "", 280))
		wf.Add(kepler.Stage(extract, []string{"in"}, "", 140))
		wf.Add(kepler.Stage(reformat, []string{"in"}, "", 210))
		wf.Add(kepler.FileSink(sink, fmt.Sprintf("%s/out%02d.dat", cfg.Dir, c)))
		wf.Connect(src, "out", parse, "in")
		wf.Connect(parse, "out", extract, "in")
		wf.Connect(extract, "out", reformat, "in")
		wf.Connect(reformat, "out", sink, "in")
	}
	if err := eng.Run(wf); err != nil {
		return nil, err
	}
	stats.FilesOut += chunks
	p.Exit()
	return stats, nil
}
