package workload

import (
	"fmt"
	"math/rand"

	"passv2/internal/kernel"
	"passv2/internal/vfs"
)

// Compile simulates the Linux-compile benchmark: unpack a source tree from
// a tarball, then build it — one cc process per translation unit, each
// reading its source plus a set of shared headers and writing an object
// file, followed by a link step reading every object. CPU heavy with
// bursts of small writes (the paper measures +15.6% under PASSv2).
func Compile(k *kernel.Kernel, cfg Config) (*Stats, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	stats := &Stats{}
	nUnits := cfg.scale(120)
	nHeaders := 30 // header pool; units include twenty each
	srcSize := 14336

	src := cfg.Dir + "/src"
	obj := cfg.Dir + "/obj"

	// "tar xf": one process unpacks the tree.
	tar := k.Spawn(nil, "tar", []string{"tar", "xf", "linux.tar"}, nil)
	stats.Processes++
	if err := tar.MkdirAll(src); err != nil {
		return nil, err
	}
	if err := tar.MkdirAll(obj); err != nil {
		return nil, err
	}
	// The tarball itself is a file the unpack reads.
	tarball := cfg.Dir + "/linux.tar"
	if err := writeThrough(tar, tarball, body(rng, nUnits*srcSize/4)); err != nil {
		return nil, err
	}
	if _, err := readThrough(tar, tarball); err != nil {
		return nil, err
	}
	for i := 0; i < nHeaders; i++ {
		if err := writeThrough(tar, fmt.Sprintf("%s/h%02d.h", src, i), body(rng, 512)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nUnits; i++ {
		if err := writeThrough(tar, fmt.Sprintf("%s/u%04d.c", src, i), body(rng, srcSize)); err != nil {
			return nil, err
		}
		stats.FilesOut++
	}
	tar.Exit()

	// Build: a make process forks a cc per unit.
	make_ := k.Spawn(nil, "make", []string{"make", "-j1"}, []string{"PATH=/usr/bin"})
	stats.Processes++
	for i := 0; i < nUnits; i++ {
		cc := make_.Fork()
		cc.Exec(cfg.Dir+"/cc", []string{"cc", "-O2", "-c", fmt.Sprintf("u%04d.c", i)}, nil)
		stats.Processes++
		srcData, err := readThrough(cc, fmt.Sprintf("%s/u%04d.c", src, i))
		if err != nil {
			return nil, err
		}
		// Each unit includes twenty headers (cached after first read,
		// but each fresh process still owes a dependency record).
		for h := 0; h < 20; h++ {
			if _, err := readThrough(cc, fmt.Sprintf("%s/h%02d.h", src, (i+h)%nHeaders)); err != nil {
				return nil, err
			}
		}
		cc.Compute(int64(len(srcData)) * 58) // compilation is CPU bound
		o := body(rng, srcSize/2)
		if err := writeThrough(cc, fmt.Sprintf("%s/u%04d.o", obj, i), o); err != nil {
			return nil, err
		}
		stats.FilesOut++
		stats.BytesOut += int64(len(o))
		cc.Exit()
	}

	// Link: ld reads every object, writes the kernel image.
	ld := make_.Fork()
	ld.Exec(cfg.Dir+"/ld", []string{"ld", "-o", "vmlinux"}, nil)
	stats.Processes++
	var total int
	for i := 0; i < nUnits; i++ {
		o, err := readThrough(ld, fmt.Sprintf("%s/u%04d.o", obj, i))
		if err != nil {
			return nil, err
		}
		total += len(o)
	}
	ld.Compute(int64(total) * 50)
	if err := writeThrough(ld, cfg.Dir+"/vmlinux", body(rng, total)); err != nil {
		return nil, err
	}
	stats.FilesOut++
	stats.BytesOut += int64(total)
	ld.Exit()
	make_.Exit()
	return stats, nil
}

// Postmark simulates the email-server benchmark: an initial pool of files
// across subdirectories, then a transaction mix of create/delete/read/
// append. I/O intensive; the paper measures +11.5% (PASSv2) and +16.8%
// (PA-NFS, mostly stackable-FS double buffering).
func Postmark(k *kernel.Kernel, cfg Config) (*Stats, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	stats := &Stats{}
	nFiles := cfg.scale(1500)
	nTxns := cfg.scale(1500)
	nDirs := 10
	minSize, maxSize := 4096, cfg.scale(1<<20)
	if maxSize < minSize {
		maxSize = minSize
	}

	p := k.Spawn(nil, "postmark", []string{"postmark", "run"}, nil)
	stats.Processes++
	var files []string
	for d := 0; d < nDirs; d++ {
		if err := p.MkdirAll(fmt.Sprintf("%s/s%02d", cfg.Dir, d)); err != nil {
			return nil, err
		}
	}
	size := func() int { return minSize + rng.Intn(maxSize-minSize+1) }
	for i := 0; i < nFiles; i++ {
		path := fmt.Sprintf("%s/s%02d/%s", cfg.Dir, rng.Intn(nDirs), fileName(rng, i))
		if err := writeThrough(p, path, body(rng, size())); err != nil {
			return nil, err
		}
		files = append(files, path)
	}
	for t := 0; t < nTxns; t++ {
		switch rng.Intn(4) {
		case 0: // create
			path := fmt.Sprintf("%s/s%02d/%s", cfg.Dir, rng.Intn(nDirs), fileName(rng, nFiles+t))
			if err := writeThrough(p, path, body(rng, size())); err != nil {
				return nil, err
			}
			files = append(files, path)
			stats.FilesOut++
		case 1: // delete
			if len(files) > 1 {
				i := rng.Intn(len(files))
				if err := p.Remove(files[i]); err != nil {
					return nil, err
				}
				files = append(files[:i], files[i+1:]...)
			}
		case 2: // read
			if _, err := readThrough(p, files[rng.Intn(len(files))]); err != nil {
				return nil, err
			}
		case 3: // append
			path := files[rng.Intn(len(files))]
			fd, err := p.Open(path, vfs.OAppend)
			if err != nil {
				return nil, err
			}
			chunk := body(rng, 4096)
			if _, err := p.Write(fd, chunk); err != nil {
				return nil, err
			}
			stats.BytesOut += int64(len(chunk))
			p.Close(fd)
		}
	}
	p.Exit()
	return stats, nil
}

// Mercurial simulates the paper's development-activity benchmark: start
// from a source tree and apply a series of patches the way patch(1) does —
// create a temporary file, merge data from the original and the patch into
// it, and rename it over the original. Heavily metadata-bound: the
// provenance writes interleave with patch's own metadata I/O and cost
// extra seeks (the paper's worst case, +23.1%).
func Mercurial(k *kernel.Kernel, cfg Config) (*Stats, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	stats := &Stats{}
	nFiles := cfg.scale(80)
	nPatches := cfg.scale(120)

	tree := cfg.Dir + "/repo"
	setup := k.Spawn(nil, "hg", []string{"hg", "clone"}, nil)
	stats.Processes++
	if err := setup.MkdirAll(tree); err != nil {
		return nil, err
	}
	for i := 0; i < nFiles; i++ {
		if err := writeThrough(setup, fmt.Sprintf("%s/file%03d.c", tree, i), body(rng, 49152)); err != nil {
			return nil, err
		}
	}
	setup.Exit()

	for n := 0; n < nPatches; n++ {
		patchProc := k.Spawn(nil, "patch", []string{"patch", "-p1"}, nil)
		stats.Processes++
		target := fmt.Sprintf("%s/file%03d.c", tree, rng.Intn(nFiles))
		patchFile := fmt.Sprintf("%s/change%04d.patch", cfg.Dir, n)
		if err := writeThrough(patchProc, patchFile, body(rng, 1024)); err != nil {
			return nil, err
		}
		orig, err := readThrough(patchProc, target)
		if err != nil {
			return nil, err
		}
		hunk, err := readThrough(patchProc, patchFile)
		if err != nil {
			return nil, err
		}
		// Merge into a temporary file, then rename over the original —
		// patch(1)'s dance.
		tmp := target + ".orig.tmp"
		merged := append(append([]byte{}, orig...), hunk...)
		if len(merged) > 49152 {
			merged = merged[len(merged)-49152:]
		}
		if err := writeThrough(patchProc, tmp, merged); err != nil {
			return nil, err
		}
		if err := patchProc.Rename(tmp, target); err != nil {
			return nil, err
		}
		stats.FilesOut++
		stats.BytesOut += int64(len(merged))
		patchProc.Exit()
	}
	return stats, nil
}
