// Package workload implements the five applications of the paper's
// evaluation (§7), as syscall-level generators against the simulated
// kernel:
//
//  1. Linux compile — unpack a source tree and build it; CPU intensive,
//     many small files, one process per compilation unit.
//  2. Postmark — the email-server benchmark: 1500 transactions over 1500
//     files of 4KB–1MB in 10 subdirectories; I/O intensive.
//  3. Mercurial activity — apply a patch series the way patch(1) does:
//     create a temporary file, merge original + patch into it, rename it
//     over the original; metadata intensive (the paper's worst case,
//     +23.1%, because provenance writes interfere with the metadata I/O).
//  4. Blast — format two protein-sequence files, run a CPU-bound matching
//     pass, then massage the output with a series of Perl scripts through
//     pipes; CPU bound (+0.7%).
//  5. PA-Kepler — a Kepler workflow that parses tabular data, extracts
//     values and reformats them; application + system provenance.
//
// Every workload is deterministic given its Config seed. The scale knob
// shrinks the paper's full-size runs for iterative benchmarking without
// changing the I/O pattern.
package workload

import (
	"fmt"
	"math/rand"

	"passv2/internal/kernel"
	"passv2/internal/vfs"
)

// Config scales a workload.
type Config struct {
	// Scale in (0,1] shrinks file counts and sizes; 1.0 is paper-sized.
	Scale float64
	// Seed drives the deterministic pseudo-randomness.
	Seed int64
	// Dir is the working directory (typically a PASS volume mount).
	Dir string
}

func (c Config) scale(n int) int {
	if c.Scale <= 0 || c.Scale > 1 {
		return n
	}
	s := int(float64(n) * c.Scale)
	if s < 1 {
		return 1
	}
	return s
}

// Stats summarizes a workload run.
type Stats struct {
	Processes int
	FilesOut  int
	BytesOut  int64
}

// writeThrough writes a whole file through a process.
func writeThrough(p *kernel.Process, path string, data []byte) error {
	fd, err := p.Open(path, vfs.OCreate|vfs.OTrunc|vfs.ORdWr)
	if err != nil {
		return err
	}
	defer p.Close(fd)
	// Programs write in small blocks (§5.4: ~4KB), which is what makes
	// analyzer duplicate elimination matter.
	for off := 0; off < len(data); off += 4096 {
		end := off + 4096
		if end > len(data) {
			end = len(data)
		}
		if _, err := p.Write(fd, data[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// readThrough reads a whole file through a process in 4KB blocks.
func readThrough(p *kernel.Process, path string) ([]byte, error) {
	fd, err := p.Open(path, vfs.ORdOnly)
	if err != nil {
		return nil, err
	}
	defer p.Close(fd)
	var out []byte
	buf := make([]byte, 4096)
	for {
		n, err := p.Read(fd, buf)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			break
		}
		out = append(out, buf[:n]...)
	}
	return out, nil
}

// body produces deterministic file content of the given size.
func body(rng *rand.Rand, size int) []byte {
	b := make([]byte, size)
	rng.Read(b)
	return b
}

func fileName(rng *rand.Rand, i int) string {
	return fmt.Sprintf("f%05d_%04x", i, rng.Intn(1<<16))
}
