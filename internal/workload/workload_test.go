package workload

import (
	"testing"

	"passv2/internal/kernel"
	"passv2/internal/lasagna"
	"passv2/internal/observer"
	"passv2/internal/vfs"
)

// newBaseline builds a plain kernel (no provenance) with a MemFS at /data.
func newBaseline() *kernel.Kernel {
	k := kernel.New(&vfs.Clock{})
	k.Mount("/", vfs.NewMemFS("root", nil))
	k.Mount("/data", vfs.NewMemFS("data", nil))
	return k
}

// newPASS builds a provenance-enabled kernel with a Lasagna volume.
func newPASS(t *testing.T) *kernel.Kernel {
	t.Helper()
	k := kernel.New(&vfs.Clock{})
	k.Mount("/", vfs.NewMemFS("root", nil))
	vol, err := lasagna.New("pass", lasagna.Config{Lower: vfs.NewMemFS("lower", nil), VolumeID: 1})
	if err != nil {
		t.Fatal(err)
	}
	k.Mount("/data", vol)
	o := observer.New(k)
	o.RegisterVolume(vol)
	return k
}

type wl struct {
	name string
	run  func(*kernel.Kernel, Config, bool) (*Stats, error)
}

func all() []wl {
	return []wl{
		{"compile", func(k *kernel.Kernel, c Config, _ bool) (*Stats, error) { return Compile(k, c) }},
		{"postmark", func(k *kernel.Kernel, c Config, _ bool) (*Stats, error) { return Postmark(k, c) }},
		{"mercurial", func(k *kernel.Kernel, c Config, _ bool) (*Stats, error) { return Mercurial(k, c) }},
		{"blast", func(k *kernel.Kernel, c Config, _ bool) (*Stats, error) { return Blast(k, c) }},
		{"kepler", Kepler2},
	}
}

func TestWorkloadsRunOnBaselineAndPASS(t *testing.T) {
	for _, w := range all() {
		w := w
		t.Run(w.name, func(t *testing.T) {
			cfg := Config{Scale: 0.05, Seed: 1, Dir: "/data"}
			kb := newBaseline()
			sb, err := w.run(kb, cfg, false)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			if sb.Processes == 0 {
				t.Fatal("no processes ran")
			}
			kp := newPASS(t)
			sp, err := w.run(kp, cfg, true)
			if err != nil {
				t.Fatalf("PASS: %v", err)
			}
			// The workload's externally visible work must be identical
			// under provenance collection (transparency).
			if sb.Processes != sp.Processes || sb.FilesOut != sp.FilesOut || sb.BytesOut != sp.BytesOut {
				t.Fatalf("stats differ under PASS: %+v vs %+v", sb, sp)
			}
			// All processes exited.
			if n := len(kp.Processes()); n != 0 {
				t.Fatalf("%d processes leaked", n)
			}
		})
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range all() {
		w := w
		t.Run(w.name, func(t *testing.T) {
			cfg := Config{Scale: 0.05, Seed: 7, Dir: "/data"}
			k1, k2 := newBaseline(), newBaseline()
			s1, err := w.run(k1, cfg, false)
			if err != nil {
				t.Fatal(err)
			}
			s2, err := w.run(k2, cfg, false)
			if err != nil {
				t.Fatal(err)
			}
			if *s1 != *s2 {
				t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
			}
			// Elapsed simulated time is deterministic too.
			if k1.Clock.Now() != k2.Clock.Now() {
				t.Fatalf("same seed, different elapsed: %v vs %v", k1.Clock.Now(), k2.Clock.Now())
			}
			// A different seed changes the run.
			k3 := newBaseline()
			s3, err := w.run(k3, Config{Scale: 0.05, Seed: 8, Dir: "/data"}, false)
			if err != nil {
				t.Fatal(err)
			}
			// Most workloads have structurally fixed sizes (the seed only
			// varies content bytes); Postmark's transaction mix and file
			// sizes are genuinely seed-driven, so it must differ.
			if w.name == "postmark" {
				if *s1 == *s3 && k1.Clock.Now() == k3.Clock.Now() {
					t.Fatal("different seed produced identical run")
				}
			}
		})
	}
}

func TestScaleKnob(t *testing.T) {
	c := Config{Scale: 0.5}
	if got := c.scale(100); got != 50 {
		t.Fatalf("scale(100) = %d", got)
	}
	if got := (Config{Scale: 0.0001}).scale(100); got != 1 {
		t.Fatal("scale must floor at 1")
	}
	if got := (Config{}).scale(100); got != 100 {
		t.Fatal("zero scale means full size")
	}
	if got := (Config{Scale: 2}).scale(100); got != 100 {
		t.Fatal("scale > 1 means full size")
	}
}

func TestCompileProducesBuildTree(t *testing.T) {
	k := newBaseline()
	if _, err := Compile(k, Config{Scale: 0.05, Seed: 1, Dir: "/data"}); err != nil {
		t.Fatal(err)
	}
	p := k.Spawn(nil, "check", nil, nil)
	if _, err := p.Stat("/data/vmlinux"); err != nil {
		t.Fatal("link output missing")
	}
	ents, err := p.ReadDir("/data/obj")
	if err != nil || len(ents) == 0 {
		t.Fatalf("object files missing: %v", err)
	}
	srcs, _ := p.ReadDir("/data/src")
	if len(srcs) < len(ents) {
		t.Fatal("source tree incomplete")
	}
}

func TestBlastPipelineOutput(t *testing.T) {
	k := newBaseline()
	if _, err := Blast(k, Config{Scale: 0.05, Seed: 1, Dir: "/data"}); err != nil {
		t.Fatal(err)
	}
	p := k.Spawn(nil, "check", nil, nil)
	st, err := p.Stat("/data/hits.final")
	if err != nil || st.Size == 0 {
		t.Fatalf("pipeline output missing: %v", err)
	}
}

func TestMercurialPatchesApplied(t *testing.T) {
	k := newBaseline()
	if _, err := Mercurial(k, Config{Scale: 0.1, Seed: 1, Dir: "/data"}); err != nil {
		t.Fatal(err)
	}
	p := k.Spawn(nil, "check", nil, nil)
	// No temporary files left behind.
	ents, err := p.ReadDir("/data/repo")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if len(e.Name) > 4 && e.Name[len(e.Name)-4:] == ".tmp" {
			t.Fatalf("temp file leaked: %s", e.Name)
		}
	}
}

func TestKeplerOutputsPerChunk(t *testing.T) {
	k := newBaseline()
	if _, err := Kepler(k, Config{Scale: 0.05, Seed: 1, Dir: "/data"}, false); err != nil {
		t.Fatal(err)
	}
	p := k.Spawn(nil, "check", nil, nil)
	found := 0
	ents, _ := p.ReadDir("/data")
	for _, e := range ents {
		if len(e.Name) > 3 && e.Name[:3] == "out" {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no workflow outputs")
	}
}
