package pass

import (
	"bytes"
	"fmt"
	"testing"

	"passv2/internal/checkpoint"
	"passv2/internal/pnode"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// TestMachineCheckpointRecover simulates the daemon lifecycle inside one
// machine: ingest, checkpoint, ingest more, lose the in-memory database
// (the crash), Recover from the store, and drain — the result must match
// the pre-crash database, and the post-recovery drain must decode only
// the post-checkpoint tail.
func TestMachineCheckpointRecover(t *testing.T) {
	m := NewMachine(Config{Provenance: true, NoClock: true})
	vol, err := m.AddVolume("/data", 1)
	if err != nil {
		t.Fatal(err)
	}
	appendN := func(lo, n int) {
		for i := lo; i < lo+n; i++ {
			ref := pnode.Ref{PNode: pnode.PNode(i + 1), Version: 1}
			err := vol.AppendProvenance([]record.Record{
				record.New(ref, record.AttrName, record.StringVal(fmt.Sprintf("/data/f%d", i))),
				record.New(ref, record.AttrType, record.StringVal(record.TypeFile)),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	store, err := checkpoint.NewStore(vfs.NewMemFS("ck", nil), "/ck", 3)
	if err != nil {
		t.Fatal(err)
	}

	appendN(0, 200)
	info, err := m.Checkpoint(store)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 400 {
		t.Fatalf("checkpoint covers %d records, want 400", info.Records)
	}
	appendN(200, 50)
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := m.Waldo.DB.Save(&want); err != nil {
		t.Fatal(err)
	}

	// Crash: the in-memory database is gone; the volume's log survives.
	decoded0 := m.Waldo.EntriesDecoded()
	rec, err := m.Recover(store)
	if err != nil {
		t.Fatal(err)
	}
	if rec.DB == nil || rec.Gen != info.Gen || len(rec.Missing) != 0 {
		t.Fatalf("recovery %+v", rec)
	}
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	// Only the 50-append tail (2 records each) is re-decoded.
	if got := m.Waldo.EntriesDecoded() - decoded0; got != 100 {
		t.Fatalf("recovery decoded %d entries, want 100", got)
	}
	var got bytes.Buffer
	if err := m.Waldo.DB.Save(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("recovered database differs from pre-crash database")
	}
	res, err := m.Query(`select F from Provenance.file as F where F.name = "/data/f249"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("post-recovery query returned %d rows, want 1", len(res.Rows))
	}
}
