// Package pass is the public API of the PASSv2 reproduction: it assembles
// the pieces of the paper's Figure 2 — kernel, interceptor/observer,
// analyzer, distributor, Lasagna volumes, Waldo, the query engine — into a
// Machine you can run provenance-aware workloads on, plus helpers for
// exporting volumes over PA-NFS and mounting remote ones.
//
// A minimal session:
//
//	m := pass.NewMachine(pass.Config{})
//	vol, _ := m.AddVolume("/data", 1)
//	p := m.Spawn("myjob", []string{"myjob"}, nil)
//	// ... p.Open / p.Read / p.Write / p.Exec ...
//	m.Drain()
//	res, _ := m.Query(`select A from Provenance.file as F F.input* as A
//	                   where F.name = "/data/out"`)
//	fmt.Print(res.Format())
package pass

import (
	"errors"
	"fmt"
	"io"
	"time"

	"passv2/internal/checkpoint"
	"passv2/internal/graph"
	"passv2/internal/kernel"
	"passv2/internal/lasagna"
	"passv2/internal/nfs"
	"passv2/internal/observer"
	"passv2/internal/passd"
	"passv2/internal/pql"
	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

// Config configures a Machine.
type Config struct {
	// Provenance enables the PASSv2 pipeline (interceptor, observer,
	// analyzer, distributor). Disabled, the machine is the vanilla
	// baseline the evaluation compares against.
	Provenance bool
	// CostModel parameterizes the simulated disk; zero value means
	// vfs.DefaultCostModel.
	CostModel *vfs.CostModel
	// NoClock disables simulated-time accounting entirely (unit tests).
	NoClock bool
}

// Machine is one assembled host: kernel, namespace, optional PASSv2
// pipeline, one simulated disk, and a Waldo spanning its PASS volumes.
type Machine struct {
	Kernel   *kernel.Kernel
	Clock    *vfs.Clock
	Disk     *vfs.Disk
	Observer *observer.Observer // nil without provenance
	Waldo    *waldo.Waldo

	root      *vfs.MemFS
	volumes   map[string]*lasagna.FS
	plainVols []*vfs.MemFS
	clients   []io.Closer
}

// NewMachine builds a machine with a MemFS root mounted at "/".
func NewMachine(cfg Config) *Machine {
	clock := &vfs.Clock{}
	if cfg.NoClock {
		clock = nil
	}
	model := vfs.DefaultCostModel()
	if cfg.CostModel != nil {
		model = *cfg.CostModel
	}
	disk := vfs.NewDisk(model, clock)
	k := kernel.New(clock)
	root := vfs.NewMemFS("root", disk)
	k.Mount("/", root)
	m := &Machine{
		Kernel:  k,
		Clock:   clock,
		Disk:    disk,
		Waldo:   waldo.New(),
		root:    root,
		volumes: make(map[string]*lasagna.FS),
	}
	if cfg.Provenance {
		m.Observer = observer.New(k)
	}
	return m
}

// AddVolume creates a Lasagna volume over a fresh lower MemFS (on the
// machine's single disk, so provenance and data writes interfere the way
// the paper measures) and mounts it. With provenance disabled the mount is
// a plain MemFS baseline.
func (m *Machine) AddVolume(mountPoint string, volumeID uint16) (*lasagna.FS, error) {
	lower := vfs.NewMemFS(fmt.Sprintf("lower%d", volumeID), m.Disk)
	if m.Observer == nil {
		m.Kernel.Mount(mountPoint, lower)
		m.plainVols = append(m.plainVols, lower)
		return nil, nil
	}
	vol, err := lasagna.New(fmt.Sprintf("pass%d", volumeID), lasagna.Config{
		Lower:    lower,
		VolumeID: volumeID,
		Disk:     m.Disk,
	})
	if err != nil {
		return nil, err
	}
	m.Kernel.Mount(mountPoint, vol)
	m.Observer.RegisterVolume(vol)
	m.Waldo.Attach(vol)
	m.volumes[mountPoint] = vol
	return vol, nil
}

// Volume returns the PASS volume mounted at mountPoint, if any.
func (m *Machine) Volume(mountPoint string) *lasagna.FS { return m.volumes[mountPoint] }

// Spawn creates a process.
func (m *Machine) Spawn(name string, argv, env []string) *kernel.Process {
	return m.Kernel.Spawn(nil, name, argv, env)
}

// Drain synchronously ingests all provenance logs into the Waldo database.
func (m *Machine) Drain() error { return m.Waldo.Drain() }

// Graph returns the queryable provenance graph over this machine's Waldo
// database. AttachDB extends it with other machines' databases (the
// cross-layer, cross-machine queries of §3.1).
func (m *Machine) Graph() *graph.Graph { return graph.New(m.Waldo.DB) }

// Query drains and runs a PQL query over the machine's provenance.
func (m *Machine) Query(q string) (*pql.Result, error) {
	if err := m.Drain(); err != nil {
		return nil, err
	}
	return pql.Run(m.Graph(), q)
}

// ExplainQuery parses q and returns the plan the query engine would
// execute — access path per binding, pushed-down filters, closure
// memoization — without running it. Planning is purely syntactic, so no
// drain is needed.
func (m *Machine) ExplainQuery(q string) (string, error) {
	parsed, err := pql.Parse(q)
	if err != nil {
		return "", err
	}
	return pql.PlanQuery(parsed).Describe(), nil
}

// Serve drains once and starts a passd query daemon over this machine's
// Waldo database: many clients can then run PQL queries concurrently (each
// over an immutable snapshot) while the machine keeps generating and
// ingesting provenance. Stop it with Close; see passv2/internal/passd for
// the protocol and cmd/pql -remote for a client.
func (m *Machine) Serve(cfg passd.Config) (*passd.Server, error) {
	if err := m.Drain(); err != nil {
		return nil, err
	}
	return passd.Serve(m.Waldo, cfg)
}

// Connect dials a remote passd daemon (Serve on another machine, or
// cmd/passd) and stacks this machine's phantom objects on it: from here
// on, pass_mkobj and pass_reviveobj issued by processes on this machine
// return remote DPAPI objects whose provenance is disclosed over the
// protocol-v2 wire and lives in the daemon's database. Components written
// against dpapi.Object — the Kepler PASS recorder, the provenance-aware
// Python runtime — need no changes; this is the paper's layer stacking
// (§5.2) across a process and network boundary. The connection is closed
// by Machine.Close.
func (m *Machine) Connect(addr string) (*passd.Client, error) {
	if m.Observer == nil {
		return nil, ErrNoProvenance
	}
	c, err := passd.Dial(addr)
	if err != nil {
		return nil, err
	}
	if _, _, err := c.Hello(); err != nil {
		c.Close()
		return nil, err
	}
	m.Observer.SetPhantomLayer(c)
	m.clients = append(m.clients, c)
	return c, nil
}

// QueryWith runs a PQL query over this machine's provenance joined with
// additional databases (e.g. NFS servers').
func (m *Machine) QueryWith(q string, extra ...*waldo.DB) (*pql.Result, error) {
	if err := m.Drain(); err != nil {
		return nil, err
	}
	g := m.Graph()
	for _, db := range extra {
		g.AddSource(db)
	}
	return pql.Run(g, q)
}

// Elapsed reports simulated elapsed time.
func (m *Machine) Elapsed() time.Duration {
	if m.Clock == nil {
		return 0
	}
	return m.Clock.Now()
}

// ResetClock rewinds simulated time (between benchmark phases).
func (m *Machine) ResetClock() {
	if m.Clock != nil {
		m.Clock.Reset()
	}
}

// Close shuts down NFS clients opened by MountNFS.
func (m *Machine) Close() error {
	var first error
	for _, c := range m.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	m.clients = nil
	return first
}

// --- PA-NFS assembly ---

// FileServer is a standalone NFS file server: its own Lasagna volume and
// disk, but (as with a synchronous-RPC testbed) time accrues on the
// caller's clock.
type FileServer struct {
	Server *nfs.Server
	Volume *lasagna.FS
	Waldo  *waldo.Waldo
}

// NewFileServer starts a PA-NFS server whose disk charges clock (pass a
// client Machine's Clock, or nil). Every file server gets its own Waldo.
func NewFileServer(volumeID uint16, clock *vfs.Clock, model vfs.CostModel) (*FileServer, error) {
	// A PA-NFS server stacks more layers over each page than the local
	// case: the NFS reply path, Lasagna's cache and the lower file
	// system's (the paper attributes 14.8 of Postmark's 16.8 points to
	// this). Scale the page-copy cost accordingly.
	model.PageCopy *= 12
	disk := vfs.NewDisk(model, clock)
	lower := vfs.NewMemFS(fmt.Sprintf("srvlower%d", volumeID), disk)
	vol, err := lasagna.New(fmt.Sprintf("export%d", volumeID), lasagna.Config{
		Lower:    lower,
		VolumeID: volumeID,
		Disk:     disk,
	})
	if err != nil {
		return nil, err
	}
	srv, err := nfs.NewServer(vol)
	if err != nil {
		return nil, err
	}
	srv.SetDisk(disk)
	w := waldo.New()
	w.Attach(vol)
	return &FileServer{Server: srv, Volume: vol, Waldo: w}, nil
}

// NewPlainFileServer starts a baseline NFS server over a plain MemFS
// export (the "NFS" column of Table 2): no provenance machinery at all.
func NewPlainFileServer(clock *vfs.Clock, model vfs.CostModel) (*FileServer, error) {
	disk := vfs.NewDisk(model, clock)
	lower := vfs.NewMemFS("srvplain", disk)
	srv, err := nfs.NewPlainServer(lower, disk)
	if err != nil {
		return nil, err
	}
	return &FileServer{Server: srv}, nil
}

// Addr returns the server's address for MountNFS.
func (fs *FileServer) Addr() string { return fs.Server.Addr() }

// DB drains and returns the server's provenance database (nil for a plain
// server).
func (fs *FileServer) DB() (*waldo.DB, error) {
	if fs.Waldo == nil {
		return nil, ErrNoProvenance
	}
	if err := fs.Waldo.Drain(); err != nil {
		return nil, err
	}
	return fs.Waldo.DB, nil
}

// Close stops the server.
func (fs *FileServer) Close() error { return fs.Server.Close() }

// MountNFS mounts a remote server at mountPoint. On a provenance-enabled
// machine the mount is provenance-aware (the DPAPI flows through); on a
// baseline machine it is a plain NFS client.
func (m *Machine) MountNFS(mountPoint, addr string) error {
	cost := nfs.DefaultNetCost()
	if m.Observer != nil {
		c, err := nfs.DialPass(addr, m.Clock, cost)
		if err != nil {
			return err
		}
		m.Kernel.Mount(mountPoint, c)
		m.Observer.RegisterVolume(c)
		m.clients = append(m.clients, c)
		return nil
	}
	c, err := nfs.Dial(addr, m.Clock, cost)
	if err != nil {
		return err
	}
	m.Kernel.Mount(mountPoint, c)
	m.clients = append(m.clients, c)
	return nil
}

// SpaceStats reports the space-accounting triple of Table 3 for this
// machine: bytes of file data, bytes of provenance database rows, and
// bytes of provenance plus indexes.
func (m *Machine) SpaceStats() (dataBytes, provBytes, provPlusIndex int64, err error) {
	if err := m.Drain(); err != nil {
		return 0, 0, 0, err
	}
	dataBytes = m.root.TotalBytes()
	for _, pv := range m.plainVols {
		dataBytes += pv.TotalBytes()
	}
	for _, vol := range m.volumes {
		if lower, ok := vol.Lower().(*vfs.MemFS); ok {
			dataBytes += lower.TotalBytes()
		}
	}
	_, prov, idx := m.Waldo.DB.Stats()
	return dataBytes, prov, prov + idx, nil
}

// ErrNoProvenance reports an operation that needs the PASSv2 pipeline on a
// baseline machine.
var ErrNoProvenance = errors.New("pass: machine built without provenance")

// SaveDB drains and writes the machine's provenance database snapshot.
func (m *Machine) SaveDB(w io.Writer) error {
	if err := m.Drain(); err != nil {
		return err
	}
	return m.Waldo.DB.Save(w)
}

// Checkpoint drains and writes a durable checkpoint of the machine's
// provenance state — database snapshot plus per-volume log offsets — to
// the store. Recovery (Recover, or a passd daemon booting on the same
// store) then replays only log bytes past the checkpoint.
func (m *Machine) Checkpoint(store *checkpoint.Store) (checkpoint.Info, error) {
	if err := m.Drain(); err != nil {
		return checkpoint.Info{}, err
	}
	return store.Write(m.Waldo.CheckpointState(), checkpoint.Policy{})
}

// Recover replaces the machine's provenance database with the newest
// valid checkpoint generation and seeds its volumes' log offsets, so the
// next Drain reads only bytes past the checkpoint. Volumes must already
// be attached (AddVolume) under the same names they were checkpointed
// with. With no usable generation the machine is left untouched (a cold
// start); the returned Recovered reports what happened either way.
func (m *Machine) Recover(store *checkpoint.Store) (*checkpoint.Recovered, error) {
	rec, err := store.Load()
	if err != nil {
		return nil, err
	}
	if rec.DB == nil {
		return rec, nil
	}
	m.Waldo.DB = rec.DB
	rec.Missing = m.Waldo.RestoreVolumes(rec.Volumes)
	return rec, nil
}
