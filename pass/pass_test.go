package pass

import (
	"bytes"
	"strings"
	"testing"

	"passv2/internal/vfs"
	"passv2/internal/waldo"
)

func TestMachineEndToEndQuery(t *testing.T) {
	m := NewMachine(Config{Provenance: true, NoClock: true})
	if _, err := m.AddVolume("/data", 1); err != nil {
		t.Fatal(err)
	}
	p := m.Spawn("gen", []string{"gen"}, nil)
	fd, err := p.Open("/data/out", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	p.Write(fd, []byte("x"))
	p.Close(fd)
	res, err := m.Query(`
		select A from Provenance.file as F F.input* as A
		where F.name = "/data/out"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("expected file + process in ancestry, got %d rows", len(res.Rows))
	}
	if !strings.Contains(res.Format(), "gen") {
		t.Fatal("process missing from ancestry")
	}
}

func TestBaselineMachineHasNoObserver(t *testing.T) {
	m := NewMachine(Config{Provenance: false, NoClock: true})
	if m.Observer != nil {
		t.Fatal("baseline machine must not observe")
	}
	vol, err := m.AddVolume("/data", 1)
	if err != nil {
		t.Fatal(err)
	}
	if vol != nil {
		t.Fatal("baseline volume should be plain")
	}
	p := m.Spawn("w", nil, nil)
	fd, err := p.Open("/data/f", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	p.Write(fd, []byte("data"))
	p.Close(fd)
	data, _, _, err := m.SpaceStats()
	if err != nil {
		t.Fatal(err)
	}
	if data != 4 {
		t.Fatalf("baseline data bytes = %d", data)
	}
}

func TestElapsedAccrues(t *testing.T) {
	m := NewMachine(Config{Provenance: true})
	m.AddVolume("/data", 1)
	p := m.Spawn("w", nil, nil)
	fd, _ := p.Open("/data/f", vfs.OCreate|vfs.ORdWr)
	p.Write(fd, make([]byte, 4096))
	p.Close(fd)
	if m.Elapsed() == 0 {
		t.Fatal("clock did not advance")
	}
	m.ResetClock()
	if m.Elapsed() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSpaceStatsSeparatesProvenance(t *testing.T) {
	m := NewMachine(Config{Provenance: true, NoClock: true})
	m.AddVolume("/data", 1)
	p := m.Spawn("w", nil, nil)
	fd, _ := p.Open("/data/f", vfs.OCreate|vfs.ORdWr)
	p.Write(fd, make([]byte, 1000))
	p.Close(fd)
	_, prov, total, err := m.SpaceStats()
	if err != nil {
		t.Fatal(err)
	}
	if prov <= 0 || total < prov {
		t.Fatalf("space stats = %d/%d", prov, total)
	}
}

func TestSaveDBRoundTrip(t *testing.T) {
	m := NewMachine(Config{Provenance: true, NoClock: true})
	m.AddVolume("/data", 1)
	p := m.Spawn("w", nil, nil)
	fd, _ := p.Open("/data/f", vfs.OCreate|vfs.ORdWr)
	p.Write(fd, []byte("x"))
	p.Close(fd)
	var buf bytes.Buffer
	if err := m.SaveDB(&buf); err != nil {
		t.Fatal(err)
	}
	db, err := waldo.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.ByName("/data/f")) != 1 {
		t.Fatal("saved DB missing file")
	}
}

func TestNFSMountEndToEnd(t *testing.T) {
	m := NewMachine(Config{Provenance: true})
	srv, err := NewFileServer(9, m.Clock, vfs.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := m.MountNFS("/mnt", srv.Addr()); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	p := m.Spawn("writer", nil, nil)
	fd, err := p.Open("/mnt/remote.txt", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	p.Write(fd, []byte("over the wire"))
	p.Close(fd)
	db, err := srv.DB()
	if err != nil {
		t.Fatal(err)
	}
	if len(db.ByName("/mnt/remote.txt")) != 1 {
		t.Fatal("remote file provenance missing at server")
	}
	// The writing process's identity was materialized to the server too.
	pns := db.ByName("writer")
	if len(pns) != 1 {
		t.Fatal("process identity missing at server")
	}
}

func TestPlainFileServerRejectsDPAPI(t *testing.T) {
	m := NewMachine(Config{Provenance: false})
	srv, err := NewPlainFileServer(m.Clock, vfs.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := m.MountNFS("/mnt", srv.Addr()); err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	p := m.Spawn("w", nil, nil)
	fd, err := p.Open("/mnt/f", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Write(fd, []byte("plain")); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.DB(); err == nil {
		t.Fatal("plain server must not have a provenance DB")
	}
}

func TestExplainQuery(t *testing.T) {
	m := NewMachine(Config{Provenance: true, NoClock: true})
	plan, err := m.ExplainQuery(`
		select A from Provenance.file as F F.input* as A
		where F.name = "/data/out"`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`name seek "/data/out"`, "memoized"} {
		if !strings.Contains(plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan)
		}
	}
	if _, err := m.ExplainQuery("select oops"); err == nil {
		t.Fatal("bad query must not explain")
	}
}
