package pass

import (
	"strings"
	"testing"

	"passv2/internal/pnode"
	"passv2/internal/pyprov"
	"passv2/internal/record"
	"passv2/internal/vfs"
)

// TestFiveLayerStack exercises §5.2's claim that the DPAPI supports an
// arbitrary number of layers: a provenance-aware application calls a
// provenance-aware library routine, both running on the provenance-aware
// runtime, whose file I/O goes through a PA-NFS client to a PA-NFS server
// backed by Lasagna:
//
//	app → library → runtime → PA-NFS client → PASSv2 storage
//
// The output's ancestry must contain objects from every layer.
func TestFiveLayerStack(t *testing.T) {
	m := NewMachine(Config{Provenance: true})
	srv, err := NewFileServer(5, m.Clock, vfs.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := m.MountNFS("/remote", srv.Addr()); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	py := m.Spawn("python", []string{"python", "pipeline.py"}, nil)
	rt := pyprov.New(py, "/remote")

	// Layer: library — a wrapped routine the application calls.
	normalize, err := rt.Wrap("lib.normalize", func(call *pyprov.Invocation, args []pyprov.Value) ([]pyprov.Value, error) {
		s := strings.ToLower(string(args[0].Data.([]byte)))
		return []pyprov.Value{{Data: []byte(s)}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Layer: application — a wrapped routine that calls the library.
	summarize, err := rt.Wrap("app.summarize", func(call *pyprov.Invocation, args []pyprov.Value) ([]pyprov.Value, error) {
		norm, err := call.Call(normalize, args...)
		if err != nil {
			return nil, err
		}
		out := append([]byte("summary: "), norm[0].Data.([]byte)...)
		return []pyprov.Value{{Data: out}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The input lives on the remote volume; the runtime reads it through
	// the kernel → NFS client → server.
	fd, err := py.Open("/remote/input.txt", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	py.Write(fd, []byte("RAW SENSOR TEXT"))
	py.Close(fd)

	in, err := rt.ReadFile("/remote/input.txt")
	if err != nil {
		t.Fatal(err)
	}
	out, err := summarize.Call(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.WriteFile("/remote/result.txt", out[0].Data.([]byte), out[0], in); err != nil {
		t.Fatal(err)
	}

	// Query at the server: the result's ancestry must span every layer.
	db, err := srv.DB()
	if err != nil {
		t.Fatal(err)
	}
	outs := db.ByName("/remote/result.txt")
	if len(outs) != 1 {
		t.Fatal("result file missing at server")
	}
	v, _ := db.LatestVersion(outs[0])
	names := map[string]bool{}
	types := map[string]bool{}
	seen := map[string]bool{}
	stack := db.Inputs(pnode.Ref{PNode: outs[0], Version: v})
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n.String()] {
			continue
		}
		seen[n.String()] = true
		if name, ok := db.NameOf(n.PNode); ok {
			names[name] = true
		}
		if typ, ok := db.TypeOf(n.PNode); ok {
			types[typ] = true
		}
		stack = append(stack, db.Inputs(n)...)
	}
	// Layer 1+2 (app + library): both wrapped functions and their
	// invocations.
	for _, want := range []string{"app.summarize", "lib.normalize"} {
		if !names[want] {
			t.Errorf("layer object %q missing from ancestry (have %v)", want, keys(names))
		}
	}
	if !types[record.TypeFunction] || !types[record.TypeInvoke] {
		t.Error("FUNCTION/INVOCATION objects missing from ancestry")
	}
	// Layer 3 (runtime/OS): the python process.
	if !names["python"] {
		t.Error("process missing from ancestry")
	}
	// Layer 4+5 (NFS + storage): the input file, named at the server.
	if !names["/remote/input.txt"] {
		t.Error("remote input file missing from ancestry")
	}
	if !types[record.TypeProc] || !types[record.TypeFile] {
		t.Error("PROC/FILE objects missing from ancestry")
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
