package pass

import (
	"strings"
	"testing"

	"passv2/internal/kepler"
	"passv2/internal/links"
	"passv2/internal/pnode"
	"passv2/internal/pyprov"
	"passv2/internal/vfs"
	"passv2/internal/web"
)

// TestWholeSystemIntegration is the capstone: all three provenance-aware
// applications on one machine, chained — the browser downloads a dataset,
// a Kepler workflow processes it, a PA-Python script plots the workflow's
// output — and a single PQL query walks the final plot's ancestry back to
// the URL the data came from, crossing browser, OS, workflow and runtime
// layers.
func TestWholeSystemIntegration(t *testing.T) {
	m := NewMachine(Config{Provenance: true, NoClock: true})
	if _, err := m.AddVolume("/work", 1); err != nil {
		t.Fatal(err)
	}

	// Layer 1: the browser fetches the dataset.
	www := web.New()
	www.AddPage("http://data.example/", "dataset index")
	www.AddDownload("http://data.example/measurements.csv", []byte("a,1\nb,2\nc,3\n"))
	bp := m.Spawn("links", nil, nil)
	b := links.New(bp, www)
	if _, err := b.NewSession("/work"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Visit("http://data.example/"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Download("http://data.example/measurements.csv", "/work/measurements.csv"); err != nil {
		t.Fatal(err)
	}
	bp.Exit()

	// Layer 2: a Kepler workflow normalizes the download.
	kp := m.Spawn("kepler", nil, nil)
	eng := kepler.NewEngine(kp)
	eng.AddRecorder(kepler.NewPASSRecorder(kp, "/work"))
	wf := kepler.NewWorkflow("normalize")
	wf.Add(kepler.FileSource("src", "/work/measurements.csv"))
	wf.Add(kepler.Stage("normalize", []string{"in"}, "", 2))
	wf.Add(kepler.FileSink("sink", "/work/normalized.dat"))
	wf.Connect("src", "out", "normalize", "in")
	wf.Connect("normalize", "out", "sink", "in")
	if err := eng.Run(wf); err != nil {
		t.Fatal(err)
	}
	kp.Exit()

	// Layer 3: a PA-Python script plots the normalized data.
	pp := m.Spawn("python", nil, nil)
	rt := pyprov.New(pp, "/work")
	plotFn, err := rt.Wrap("plot", func(call *pyprov.Invocation, args []pyprov.Value) ([]pyprov.Value, error) {
		return []pyprov.Value{{Data: append([]byte("PLOT:"), args[0].Data.([]byte)...)}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	in, err := rt.ReadFile("/work/normalized.dat")
	if err != nil {
		t.Fatal(err)
	}
	out, err := plotFn.Call(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.WriteFile("/work/final-plot.png", out[0].Data.([]byte), out[0], in); err != nil {
		t.Fatal(err)
	}
	pp.Exit()

	// One query, four layers.
	res, err := m.Query(`
		select Ancestor
		from Provenance.file as Plot
		     Plot.input* as Ancestor
		where Plot.name = "/work/final-plot.png"`)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Format()
	for _, want := range []string{
		"normalized.dat",            // workflow output file (OS layer)
		"normalize",                 // workflow operator (Kepler layer)
		"measurements.csv",          // downloaded file (OS layer)
		"plot",                      // wrapped routine (Python layer)
		"python", "kepler", "links", // the processes
	} {
		if !strings.Contains(got, want) {
			t.Errorf("cross-layer ancestry missing %q:\n%s", want, got)
		}
	}
	// The browser session (and through it the source URL) is reachable.
	if err := m.Drain(); err != nil {
		t.Fatal(err)
	}
	db := m.Waldo.DB
	plotPN := db.ByName("/work/final-plot.png")[0]
	v, _ := db.LatestVersion(plotPN)
	g := m.Graph()
	foundSession := false
	for _, a := range g.Ancestors(pnode.Ref{PNode: plotPN, Version: v}) {
		if typ, ok := db.TypeOf(a.PNode); ok && typ == "SESSION" {
			foundSession = true
			urls := db.AttrValues(a, "VISITED_URL")
			if len(urls) == 0 {
				t.Error("session reached but its URL trail is empty")
			}
		}
	}
	if !foundSession {
		t.Error("browser session not reachable from the final plot")
	}

	// Bonus: the baseline machine runs the same pipeline with zero
	// provenance machinery engaged (sanity that apps degrade gracefully).
	base := NewMachine(Config{Provenance: false, NoClock: true})
	base.AddVolume("/work", 1)
	bp2 := base.Spawn("links", nil, nil)
	b2 := links.New(bp2, www)
	if _, err := b2.NewSession("/work"); err == nil {
		// Sessions need pass_mkobj; without PASS this must fail cleanly.
		t.Error("session creation should fail without the PASS pipeline")
	}
	fd, err := bp2.Open("/work/plain.txt", vfs.OCreate|vfs.ORdWr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp2.Write(fd, []byte("still works")); err != nil {
		t.Fatal(err)
	}
}
